
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/timing.cpp" "src/CMakeFiles/rcua.dir/platform/timing.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/platform/timing.cpp.o.d"
  "/root/repo/src/platform/topology.cpp" "src/CMakeFiles/rcua.dir/platform/topology.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/platform/topology.cpp.o.d"
  "/root/repo/src/reclaim/call_rcu.cpp" "src/CMakeFiles/rcua.dir/reclaim/call_rcu.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/reclaim/call_rcu.cpp.o.d"
  "/root/repo/src/reclaim/ebr.cpp" "src/CMakeFiles/rcua.dir/reclaim/ebr.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/reclaim/ebr.cpp.o.d"
  "/root/repo/src/reclaim/hazard.cpp" "src/CMakeFiles/rcua.dir/reclaim/hazard.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/reclaim/hazard.cpp.o.d"
  "/root/repo/src/reclaim/qsbr.cpp" "src/CMakeFiles/rcua.dir/reclaim/qsbr.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/reclaim/qsbr.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/CMakeFiles/rcua.dir/runtime/cluster.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/comm.cpp" "src/CMakeFiles/rcua.dir/runtime/comm.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/runtime/comm.cpp.o.d"
  "/root/repo/src/runtime/global_lock.cpp" "src/CMakeFiles/rcua.dir/runtime/global_lock.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/runtime/global_lock.cpp.o.d"
  "/root/repo/src/runtime/privatization.cpp" "src/CMakeFiles/rcua.dir/runtime/privatization.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/runtime/privatization.cpp.o.d"
  "/root/repo/src/runtime/task_pool.cpp" "src/CMakeFiles/rcua.dir/runtime/task_pool.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/runtime/task_pool.cpp.o.d"
  "/root/repo/src/runtime/this_task.cpp" "src/CMakeFiles/rcua.dir/runtime/this_task.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/runtime/this_task.cpp.o.d"
  "/root/repo/src/runtime/thread_registry.cpp" "src/CMakeFiles/rcua.dir/runtime/thread_registry.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/runtime/thread_registry.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/rcua.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/rcua.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sim/task_clock.cpp" "src/CMakeFiles/rcua.dir/sim/task_clock.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/sim/task_clock.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/CMakeFiles/rcua.dir/util/env.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/util/env.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/rcua.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/report.cpp" "src/CMakeFiles/rcua.dir/util/report.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/util/report.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rcua.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/rcua.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/rcua.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
