# Empty dependencies file for rcua.
# This may be replaced when dependencies are built.
