#!/usr/bin/env python3
"""Run the benchmark suite and emit one reproducible BENCH_<timestamp>.json.

Each bench binary prints an aligned table for humans, a `csv:` block for
tools, and (for the EBR-policy arrays) machine-readable `bench_stat`
lines carrying the reclaimer counters (reads / retries / epoch_advances;
the read-side counters are live only in -DRCUA_STATS=ON builds). This
script runs a configurable set of binaries, parses all three, adds the
google-benchmark micro suite in native JSON, and writes everything plus
run metadata (git revision, host, RCUA_* environment) to one JSON file.

Usage:
    python3 scripts/run_benchmarks.py --build-dir build [--out DIR]
        [--label NAME] [--smoke] [--benches a,b,c]

`--smoke` shrinks the workload via RCUA_* env so the whole suite finishes
in well under a minute — the CI artifact mode. The `bench-json` CMake
target invokes exactly that.
"""

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time

# Default suite: the stripes ablation, the reclaim shoot-out (striped vs
# legacy vs every baseline), one Figure-2 cell, and the aggregation,
# async-pipelining, and block-cache ablations (their comm_stat counters
# feed scripts/check_bench_gate.py).
DEFAULT_BENCHES = [
    "bench_ablation_ebr_stripes",
    "bench_ablation_reclaim",
    "bench_ablation_reclaim_bakeoff",
    "bench_fig2a_random_small",
    "bench_ablation_aggregation",
    "bench_ablation_async",
    "bench_ablation_cache",
    "bench_ablation_sharding",
]
MICRO_BENCH = "bench_micro_primitives"

SMOKE_ENV = {
    "RCUA_LOCALES": "2,4",
    "RCUA_TASKS_PER_LOCALE": "4",
    "RCUA_OPS_PER_TASK": "256",
    "RCUA_ARRAY_ELEMS": str(1 << 14),
    "RCUA_THREADS": "1,2,4,8",
}

BENCH_STAT_RE = re.compile(
    r"^bench_stat\s+impl=(?P<impl>\S+)\s+locales=(?P<locales>\d+)\s+"
    r"reads=(?P<reads>\d+)\s+retries=(?P<retries>\d+)\s+"
    r"epoch_advances=(?P<epoch_advances>\d+)\s*$"
)

# Deterministic communication counters (bench_ablation_aggregation and
# friends): `comm_stat key=value key=value ...`. Numeric values become
# ints; everything else stays a string. These feed the CI regression
# gate (scripts/check_bench_gate.py).
COMM_STAT_RE = re.compile(r"^comm_stat\s+(?P<kv>(?:\S+=\S+\s*)+)$")

# Observability stats: per-op virtual-time latency percentiles and other
# registry-derived metrics, `obs_stat key=value ...`. Entries carry a
# det=0/1 flag: det=1 means the values are a deterministic function of
# the workload (pure per-task virtual-time charges) and are exact-match
# gated by scripts/check_bench_gate.py; det=0 entries are recorded for
# the artifact but not gated (their virtual times depend on real-thread
# arrival order at shared VirtualResources).
OBS_STAT_RE = re.compile(r"^obs_stat\s+(?P<kv>(?:\S+=\S+\s*)+)$")


def _parse_kv(kv_text):
    entry = {}
    for pair in kv_text.split():
        k, _, v = pair.partition("=")
        entry[k] = int(v) if v.isdigit() else v
    return entry


def parse_bench_output(text):
    """Extracts csv blocks, bench_stat/comm_stat/obs_stat lines."""
    lines = text.splitlines()
    tables = []
    stats = []
    comm_stats = []
    obs_stats = []
    i = 0
    while i < len(lines):
        line = lines[i]
        m = BENCH_STAT_RE.match(line)
        if m:
            d = m.groupdict()
            stats.append(
                {
                    "impl": d["impl"],
                    "locales": int(d["locales"]),
                    "reads": int(d["reads"]),
                    "retries": int(d["retries"]),
                    "epoch_advances": int(d["epoch_advances"]),
                }
            )
        m = COMM_STAT_RE.match(line)
        if m:
            comm_stats.append(_parse_kv(m.group("kv")))
        m = OBS_STAT_RE.match(line)
        if m:
            obs_stats.append(_parse_kv(m.group("kv")))
        if line.strip() == "csv:" and i + 1 < len(lines):
            header = lines[i + 1].split(",")
            rows = []
            j = i + 2
            while j < len(lines) and "," in lines[j]:
                rows.append(lines[j].split(","))
                j += 1
            tables.append({"header": header, "rows": rows})
            i = j
            continue
        i += 1
    return tables, stats, comm_stats, obs_stats


def run_binary(path, env, extra_args=None, timeout=1800):
    proc = subprocess.run(
        [path] + (extra_args or []),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return proc.returncode, proc.stdout, proc.stderr


def git_rev(repo_root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default=".", help="directory for the JSON file")
    ap.add_argument("--label", default="", help="free-form tag stored in meta")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny workloads (CI artifact mode)")
    ap.add_argument("--benches", default="",
                    help="comma list overriding the default bench set")
    ap.add_argument("--skip-micro", action="store_true",
                    help="skip the google-benchmark micro suite")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bench_dir = os.path.join(args.build_dir, "bench")
    if not os.path.isdir(bench_dir):
        sys.exit(f"error: {bench_dir} not found — build the project first")

    env = dict(os.environ)
    if args.smoke:
        for k, v in SMOKE_ENV.items():
            env.setdefault(k, v)

    benches = [b for b in args.benches.split(",") if b] or DEFAULT_BENCHES

    # A missing binary is a hard error, not a skip: a silently skipped
    # bench drops its counters from the JSON, and the downstream gate
    # would report every one of them as "present in baseline, not run
    # now" — fail here with the actionable message instead.
    missing = [
        name
        for name in benches
        if not os.path.isfile(os.path.join(bench_dir, name))
    ]
    if missing:
        sys.exit(
            f"error: bench binar{'y' if len(missing) == 1 else 'ies'} not "
            f"built: {', '.join(missing)} — run "
            f"`cmake --build {args.build_dir}` (with the bench targets "
            f"enabled) before invoking run_benchmarks.py"
        )

    results = {}
    for name in benches:
        path = os.path.join(bench_dir, name)
        print(f"[bench-json] running {name} ...")
        started = time.time()
        code, out, err = run_binary(path, env)
        tables, stats, comm_stats, obs_stats = parse_bench_output(out)
        results[name] = {
            "returncode": code,
            "elapsed_s": round(time.time() - started, 3),
            "tables": tables,
            "bench_stats": stats,
            "comm_stats": comm_stats,
            "obs_stats": obs_stats,
        }
        if code != 0:
            results[name]["stderr"] = err[-4000:]
            print(f"[bench-json] {name} FAILED (rc={code})", file=sys.stderr)

    micro = None
    if not args.skip_micro:
        micro_path = os.path.join(bench_dir, MICRO_BENCH)
        if os.path.isfile(micro_path):
            print(f"[bench-json] running {MICRO_BENCH} ...")
            micro_args = ["--benchmark_format=json"]
            if args.smoke:
                micro_args.append("--benchmark_min_time=0.01s")
            code, out, err = run_binary(micro_path, env, micro_args)
            try:
                micro = json.loads(out)
            except json.JSONDecodeError:
                micro = {"error": "unparseable output", "returncode": code}

    # Read-side counters are only live in -DRCUA_STATS=ON builds; record
    # whether this run's numbers include them.
    stats_live = any(
        s["reads"] > 0
        for r in results.values()
        for s in r.get("bench_stats", [])
    )

    doc = {
        "meta": {
            "timestamp": time.strftime("%Y%m%dT%H%M%S"),
            "label": args.label,
            "smoke": args.smoke,
            "git_rev": git_rev(repo_root),
            "host": platform.node(),
            "machine": platform.machine(),
            "system": platform.platform(),
            "cpus": os.cpu_count(),
            "read_stats_live": stats_live,
            "env": {k: v for k, v in env.items() if k.startswith("RCUA_")},
        },
        "results": results,
        "micro": micro,
    }

    os.makedirs(args.out, exist_ok=True)
    out_path = os.path.join(
        args.out, f"BENCH_{doc['meta']['timestamp']}.json"
    )
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"[bench-json] wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
