#!/usr/bin/env python3
"""Summarize an RCUA_TRACE Chrome-trace JSON as a per-phase time table.

Usage:
    RCUA_TRACE=trace.json ./build/bench/bench_ablation_async
    python3 scripts/trace_summary.py trace.json

The trace timestamps are *virtual* nanoseconds whenever a sim::TaskClock
was attached (bench measured regions, sched scenarios) and wall
nanoseconds otherwise, so the breakdown answers "where does the modeled
time go" — e.g. how much of a resize under a stalled reader is spent in
the drain wait vs the publish retry loop vs comm (EXPERIMENTS.md).

Span events ('B'/'E') are matched per thread/task (tid) in stack order,
like chrome://tracing does; instant events ('i') are counted. The table
reports, per event name: event count, total/mean/max span duration, and
the share of the per-tid busy time the spans account for.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        sys.exit(f"error: {path} is not a Chrome trace_event file")
    return events


def summarize(events):
    spans = defaultdict(lambda: {"count": 0, "total_us": 0.0, "max_us": 0.0})
    instants = defaultdict(int)
    stacks = defaultdict(list)  # tid -> [(name, begin_ts)]
    unmatched = 0

    for ev in events:
        ph = ev.get("ph")
        name = ev.get("name", "?")
        tid = ev.get("tid", 0)
        ts = float(ev.get("ts", 0.0))
        if ph == "B":
            stacks[tid].append((name, ts))
        elif ph == "E":
            if not stacks[tid]:
                unmatched += 1
                continue
            open_name, begin = stacks[tid].pop()
            dur = max(0.0, ts - begin)
            s = spans[open_name]
            s["count"] += 1
            s["total_us"] += dur
            s["max_us"] = max(s["max_us"], dur)
        elif ph == "i" or ph == "I":
            instants[name] += 1
    unmatched += sum(len(st) for st in stacks.values())
    return spans, instants, unmatched


def print_table(rows, headers):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    print(fmt.format(*headers))
    print(fmt.format(*("-" * w for w in widths)))
    for row in rows:
        print(fmt.format(*row))


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("trace", help="Chrome trace JSON written via RCUA_TRACE")
    args = ap.parse_args()

    events = load_events(args.trace)
    spans, instants, unmatched = summarize(events)

    grand_total = sum(s["total_us"] for s in spans.values())
    if spans:
        print(f"spans ({sum(s['count'] for s in spans.values())} events):")
        rows = []
        for name in sorted(spans, key=lambda n: -spans[n]["total_us"]):
            s = spans[name]
            share = 100.0 * s["total_us"] / grand_total if grand_total else 0.0
            rows.append(
                [
                    name,
                    str(s["count"]),
                    f"{s['total_us']:.3f}",
                    f"{s['total_us'] / s['count']:.3f}",
                    f"{s['max_us']:.3f}",
                    f"{share:.1f}%",
                ]
            )
        print_table(
            rows, ["phase", "count", "total_us", "mean_us", "max_us", "share"]
        )
    else:
        print("no span events in trace")

    if instants:
        print(f"\ninstant events:")
        rows = [[n, str(instants[n])]
                for n in sorted(instants, key=lambda n: -instants[n])]
        print_table(rows, ["event", "count"])

    if unmatched:
        print(
            f"\nnote: {unmatched} unmatched begin/end event(s) — ring "
            f"overflow discarded their partners (raise RCUA_TRACE_CAP)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
