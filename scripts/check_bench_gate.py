#!/usr/bin/env python3
"""Gate CI on the deterministic counters in a BENCH_<timestamp>.json.

The simulated cluster makes communication volume a *deterministic*
function of the workload: for a fixed RCUA_* environment, the comm_stat
counters (gets / puts / remote executes) and the bench_stat `reads`
totals must be bit-identical run to run, on any machine. This script
compares a fresh bench-json artifact against the committed baseline
(bench/baselines/smoke.json) and fails on any drift in those counters —
a changed GET count is a protocol change, intended or not, and must be
acknowledged by refreshing the baseline in the same commit.

Genuinely nondeterministic signals are not load-bearing:
  - EBR read retries depend on thread interleaving; they only fail the
    gate on a blow-up (>10x baseline and >1000 absolute), which in
    practice means a read-side livelock regression, not scheduler noise.
  - epoch advances and wall/elapsed times are reported but never fatal.

Usage:
    python3 scripts/check_bench_gate.py \
        --baseline bench/baselines/smoke.json \
        --current build/BENCH_*.json

Refresh the baseline after an intended protocol change with:
    cmake --build build --target bench-json
    cp build/BENCH_<timestamp>.json bench/baselines/smoke.json
"""

import argparse
import difflib
import glob
import json
import sys

# comm_stat fields that are pure outcomes; everything else in the entry
# (skew, impl, cap, window, elems, ...) identifies the configuration.
# The async counters (bench_ablation_async) are deterministic too: the
# simulated cluster issues, completes, and windows ops as a pure function
# of the workload — and so are the block-cache counters
# (bench_ablation_cache runs one task per locale, making hit/miss/fill/
# eviction sequences single-consumer per locale). Entries from benches
# that predate a counter simply omit the key on both sides and compare
# equal.
# The reclamation bake-off counters (bench_ablation_reclaim_bakeoff)
# come from a single-locale, single-worker train against one parked
# reader, so retire/free/era-advance sequences are exact: pending_end is
# the measured bounded-memory claim (constant for ibr/he, train-length
# for ebr/legacy/qsbr) and pending_after_flush must be 0.
COMM_COUNTERS = ("gets", "puts", "executes",
                 "issued", "completed", "max_inflight",
                 "hits", "misses", "fills", "evictions",
                 "retired", "freed", "era_advances", "era_scans",
                 "stalled_spines", "defers",
                 "pending_end", "pending_after_flush",
                 # Sharded service layer (bench_ablation_sharding):
                 # routing is block-cyclic arithmetic + an RCU map read
                 # and migration traffic is a pure function of the block
                 # layout, so all of these are exact-match.
                 "routed", "routed_remote", "remaps",
                 "migrations", "migrated_blocks")

RETRY_FACTOR = 10
RETRY_SLACK = 1000

# obs_stat fields that are pure outcomes; everything else (bench, impl,
# skew, det, ...) identifies the configuration. Virtual-time latency
# percentiles are exact-match gated — but ONLY for entries flagged
# det=1: an impl whose per-op virtual times go through a shared
# sim::VirtualResource (EBR slot lines and friends) depends on
# real-thread arrival order and is recorded without gating.
OBS_COUNTERS = ("n", "p50_ns", "p99_ns", "p999_ns")


def load(path):
    with open(path) as f:
        return json.load(f)


def comm_key(entry):
    return tuple(
        sorted((k, v) for k, v in entry.items() if k not in COMM_COUNTERS)
    )


def render_comm_lines(bench, entries):
    """Canonical one-counter-per-line rendering of a bench's gated
    comm_stat counters, for the unified diff shown on drift."""
    lines = []
    for entry in sorted(entries, key=comm_key):
        label = " ".join(f"{k}={v}" for k, v in comm_key(entry))
        for counter in COMM_COUNTERS:
            if counter in entry:
                lines.append(f"{bench} [{label}] {counter}={entry[counter]}")
    return lines


def check_comm_stats(bench, base, cur, failures):
    base_by_key = {comm_key(e): e for e in base}
    cur_by_key = {comm_key(e): e for e in cur}
    for key, b in base_by_key.items():
        c = cur_by_key.get(key)
        label = " ".join(f"{k}={v}" for k, v in key)
        if c is None:
            failures.append(
                f"{bench}: config [{label}] present in baseline but "
                f"missing from the current run (workload or env changed?)"
            )
            continue
        for counter in COMM_COUNTERS:
            if b.get(counter) != c.get(counter):
                failures.append(
                    f"{bench}: [{label}] {counter} changed "
                    f"{b.get(counter)} -> {c.get(counter)}"
                )
    for key in cur_by_key.keys() - base_by_key.keys():
        label = " ".join(f"{k}={v}" for k, v in key)
        failures.append(
            f"{bench}: config [{label}] in the current run has no "
            f"baseline entry (new config? refresh the baseline)"
        )


def obs_key(entry):
    return tuple(
        sorted((k, v) for k, v in entry.items() if k not in OBS_COUNTERS)
    )


def check_obs_stats(bench, base, cur, failures):
    base_by_key = {obs_key(e): e for e in base}
    cur_by_key = {obs_key(e): e for e in cur}
    for key, b in base_by_key.items():
        c = cur_by_key.get(key)
        label = " ".join(f"{k}={v}" for k, v in key)
        if c is None:
            failures.append(
                f"{bench}: obs config [{label}] present in baseline but "
                f"missing from the current run"
            )
            continue
        if b.get("det") != 1:
            continue  # recorded for the artifact, not gated
        for counter in OBS_COUNTERS:
            if b.get(counter) != c.get(counter):
                failures.append(
                    f"{bench}: [{label}] {counter} changed "
                    f"{b.get(counter)} -> {c.get(counter)} (virtual-time "
                    f"percentiles are deterministic for det=1 entries)"
                )
    for key in cur_by_key.keys() - base_by_key.keys():
        label = " ".join(f"{k}={v}" for k, v in key)
        failures.append(
            f"{bench}: obs config [{label}] in the current run has no "
            f"baseline entry (new config? refresh the baseline)"
        )


def check_bench_stats(bench, base, cur, failures, warnings):
    base_by_key = {(e["impl"], e["locales"]): e for e in base}
    cur_by_key = {(e["impl"], e["locales"]): e for e in cur}
    for key, b in base_by_key.items():
        c = cur_by_key.get(key)
        impl, locales = key
        label = f"impl={impl} locales={locales}"
        if c is None:
            failures.append(
                f"{bench}: bench_stat [{label}] missing from current run"
            )
            continue
        if b["reads"] != c["reads"]:
            failures.append(
                f"{bench}: [{label}] reads changed "
                f"{b['reads']} -> {c['reads']} (workload drift)"
            )
        limit = max(b["retries"] * RETRY_FACTOR, b["retries"] + RETRY_SLACK)
        if c["retries"] > limit:
            failures.append(
                f"{bench}: [{label}] read retries blew up "
                f"{b['retries']} -> {c['retries']} (limit {limit})"
            )
        if b["epoch_advances"] != c["epoch_advances"]:
            warnings.append(
                f"{bench}: [{label}] epoch_advances "
                f"{b['epoch_advances']} -> {c['epoch_advances']} "
                f"(nondeterministic; informational)"
            )


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--baseline", required=True)
    ap.add_argument(
        "--current",
        nargs="+",
        required=True,
        help="BENCH json path(s)/glob; the lexically newest match is used",
    )
    args = ap.parse_args()

    candidates = []
    for pat in args.current:
        candidates.extend(glob.glob(pat) or [pat])
    candidates = sorted(set(candidates))
    if not candidates:
        sys.exit("error: --current matched no files")
    current_path = candidates[-1]

    baseline = load(args.baseline)
    current = load(current_path)
    print(f"[bench-gate] baseline {args.baseline} "
          f"(rev {baseline['meta'].get('git_rev', '?')[:12]})")
    print(f"[bench-gate] current  {current_path} "
          f"(rev {current['meta'].get('git_rev', '?')[:12]})")

    base_env = baseline["meta"].get("env", {})
    cur_env = current["meta"].get("env", {})
    if base_env != cur_env:
        print(
            f"[bench-gate] WARNING: RCUA_* env differs from baseline\n"
            f"  baseline: {base_env}\n  current:  {cur_env}\n"
            f"  counter mismatches below may just reflect that.",
            file=sys.stderr,
        )

    failures = []
    warnings = []
    base_diff_lines = []
    cur_diff_lines = []
    for bench, b in baseline.get("results", {}).items():
        if "error" in b:
            continue
        c = current.get("results", {}).get(bench)
        if c is None:
            failures.append(f"{bench}: present in baseline, not run now")
            continue
        if c.get("returncode", 0) != 0:
            failures.append(
                f"{bench}: exited with rc={c.get('returncode')}"
            )
            continue
        n_before = len(failures)
        check_comm_stats(
            bench, b.get("comm_stats") or [], c.get("comm_stats") or [],
            failures,
        )
        if len(failures) > n_before:
            # Only drifted benches enter the diff — it stays readable
            # when one counter moves in a 7-bench artifact.
            base_diff_lines += render_comm_lines(bench,
                                                 b.get("comm_stats") or [])
            cur_diff_lines += render_comm_lines(bench,
                                                c.get("comm_stats") or [])
        check_obs_stats(
            bench, b.get("obs_stats") or [], c.get("obs_stats") or [],
            failures,
        )
        check_bench_stats(
            bench, b.get("bench_stats") or [], c.get("bench_stats") or [],
            failures, warnings,
        )
        be, ce = b.get("elapsed_s"), c.get("elapsed_s")
        if be and ce and ce > 3 * be:
            warnings.append(
                f"{bench}: elapsed {be}s -> {ce}s (wall time is "
                f"machine-dependent; never fatal)"
            )

    for w in warnings:
        print(f"[bench-gate] note: {w}")
    if failures:
        print(f"[bench-gate] FAIL: {len(failures)} deterministic "
              f"counter regression(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        diff = list(difflib.unified_diff(
            base_diff_lines, cur_diff_lines,
            fromfile=f"baseline ({args.baseline})",
            tofile=f"current ({current_path})",
            lineterm="",
        ))
        if diff:
            print("\nunified diff of the drifted benches' gated "
                  "counters:", file=sys.stderr)
            for line in diff:
                print(line, file=sys.stderr)
        print(
            "\nIf the change is intentional, refresh the baseline:\n"
            "  cmake --build build --target bench-json\n"
            "  cp build/BENCH_<timestamp>.json bench/baselines/smoke.json",
            file=sys.stderr,
        )
        return 1
    print("[bench-gate] OK: all deterministic counters match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
