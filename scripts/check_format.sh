#!/usr/bin/env bash
# Fails if any tracked C++ file deviates from .clang-format.
#
# Usage: scripts/check_format.sh [--fix]
#   --fix rewrites the files in place instead of failing.
#
# The file set is everything git tracks under src/ tests/ bench/
# examples/ — generated build trees never enter the check.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "error: clang-format not found on PATH." >&2
  echo "Install it (e.g. 'apt-get install clang-format') and re-run;" >&2
  echo "CI runs this check with the distro's default clang-format." >&2
  exit 2
fi

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

mapfile -t files < <(git ls-files 'src/**/*.hpp' 'src/**/*.cpp' \
  'src/*.hpp' 'tests/*.cpp' 'bench/*.cpp' 'bench/*.hpp' \
  'examples/*.cpp')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "error: file list came up empty — run from a git checkout" >&2
  exit 2
fi

clang-format --style=file "${mode[@]}" "${files[@]}"
echo "format check OK (${#files[@]} files)"
