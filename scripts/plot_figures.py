#!/usr/bin/env python3
"""Render the benchmark CSV blocks in bench_output.txt as ASCII plots.

The bench binaries print every series twice: an aligned table for humans
and a `csv:` block for tools. This script parses the CSV blocks and draws
log-scale ASCII charts per figure, mirroring the paper's presentation well
enough to eyeball shapes next to EXPERIMENTS.md without matplotlib.

Usage:
    python3 scripts/plot_figures.py [bench_output.txt]
"""

import math
import sys


def parse_blocks(path):
    """Yields (title, header, rows) per bench section with a csv block."""
    title = None
    blocks = []
    with open(path, "r", errors="replace") as f:
        lines = f.read().splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith("== ") and line.endswith(" =="):
            title = line.strip("= ").strip()
        if line.strip() == "csv:" and i + 1 < len(lines):
            header = lines[i + 1].split(",")
            rows = []
            j = i + 2
            while j < len(lines) and "," in lines[j]:
                rows.append(lines[j].split(","))
                j += 1
            if rows:
                blocks.append((title or "(untitled)", header, rows))
            i = j
            continue
        i += 1
    return blocks


def to_float(s):
    try:
        return float(s)
    except ValueError:
        return None


def plot(title, header, rows, width=68, height=16):
    xs = [r[0] for r in rows]
    series = {}
    for col in range(1, len(header)):
        vals = [to_float(r[col]) if col < len(r) else None for r in rows]
        if any(v is not None and v > 0 for v in vals):
            series[header[col]] = vals
    if not series:
        return

    all_vals = [v for vs in series.values() for v in vs if v and v > 0]
    lo, hi = math.log10(min(all_vals)), math.log10(max(all_vals))
    if hi - lo < 1e-9:
        hi = lo + 1

    grid = [[" "] * width for _ in range(height)]
    marks = "o*x+#@%&"
    legend = []
    for si, (name, vals) in enumerate(series.items()):
        mark = marks[si % len(marks)]
        legend.append(f"{mark}={name}")
        for xi, v in enumerate(vals):
            if v is None or v <= 0:
                continue
            x = int(xi * (width - 1) / max(1, len(vals) - 1))
            y = int((math.log10(v) - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - y][x] = mark

    print(f"\n### {title}")
    print(f"    y: log10 throughput [{10**lo:.2g} .. {10**hi:.2g}]   "
          f"x: {header[0]} = {', '.join(xs)}")
    for row in grid:
        print("    |" + "".join(row))
    print("    +" + "-" * width)
    print("    " + "   ".join(legend))


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    blocks = parse_blocks(path)
    if not blocks:
        print(f"no csv blocks found in {path}", file=sys.stderr)
        return 1
    for title, header, rows in blocks:
        plot(title, header, rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
