#pragma once

// Shared benchmark harness for the paper-figure reproductions.
//
// The host is assumed to be a commodity machine, not a Cray: throughput
// is computed in *virtual time* from the simulation layer (see
// src/sim/ and DESIGN.md §2) unless RCUA_WALLCLOCK=1 is set. Every
// parameter is env-overridable:
//
//   RCUA_LOCALES          comma list, e.g. "2,4,8,16,32"
//   RCUA_TASKS_PER_LOCALE default 44 (the paper's per-node task count)
//   RCUA_OPS_PER_TASK     per-figure default (scaled down from the paper)
//   RCUA_ARRAY_ELEMS      array capacity for indexing benches
//   RCUA_BLOCK_SIZE       RCUArray BlockSize (paper uses 1024)
//   RCUA_SEED             workload RNG seed
//   RCUA_WALLCLOCK        1 = measure wall time instead of virtual time
//   RCUA_COST_*           cost-model overrides (see sim/cost_model.hpp)

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rcua.hpp"
#include "obs/metrics.hpp"
#include "platform/rng.hpp"
#include "platform/timing.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rcua::bench {

struct Params {
  std::vector<std::uint64_t> locales{2, 4, 8, 16, 32};
  std::uint32_t tasks_per_locale = 44;
  std::uint64_t ops_per_task = 1024;
  std::uint64_t array_elems = 1ULL << 20;
  std::size_t block_size = 1024;
  std::uint64_t seed = 0xC0FFEE;
  bool wallclock = false;

  static Params from_env(Params defaults) {
    Params p = defaults;
    p.locales = util::env_u64_list("RCUA_LOCALES", p.locales);
    p.tasks_per_locale = static_cast<std::uint32_t>(
        util::env_u64("RCUA_TASKS_PER_LOCALE", p.tasks_per_locale));
    p.ops_per_task = util::env_u64("RCUA_OPS_PER_TASK", p.ops_per_task);
    p.array_elems = util::env_u64("RCUA_ARRAY_ELEMS", p.array_elems);
    p.block_size = util::env_u64("RCUA_BLOCK_SIZE", p.block_size);
    p.seed = util::env_u64("RCUA_SEED", p.seed);
    p.wallclock = util::env_bool("RCUA_WALLCLOCK", p.wallclock);
    return p;
  }

  void print_banner(const char* name, const char* paper_workload,
                    const char* paper_shape) const {
    std::printf("== %s ==\n", name);
    std::printf("paper workload : %s\n", paper_workload);
    std::printf("paper shape    : %s\n", paper_shape);
    std::printf(
        "this run       : tasks/locale=%u ops/task=%llu array=%llu "
        "block=%zu mode=%s\n\n",
        tasks_per_locale, static_cast<unsigned long long>(ops_per_task),
        static_cast<unsigned long long>(array_elems), block_size,
        wallclock ? "wallclock" : "virtual-time");
  }
};

enum class Pattern { kRandom, kSequential };

inline const char* pattern_name(Pattern p) {
  return p == Pattern::kRandom ? "random" : "sequential";
}

/// Per-operation latency sampler behind the `obs_stat` pipeline
/// (DESIGN.md §12): each task owns one lane (no sharing, no locks in
/// the measured region), ops are timed in *virtual* time when a
/// TaskClock is attached and wall time otherwise, and emit() merges the
/// lanes into p50/p99/p999 printed through obs::StatLine. Reading the
/// clock charges nothing, so sampling never moves a throughput number.
///
/// The `det` flag emitted with each line tells scripts/check_bench_gate
/// whether the percentiles are exact-match gated: virtual-time
/// latencies are deterministic only for impls whose charges are pure
/// per-task functions of the workload (see kDetVtime on the impl
/// adapters); impls that contend on shared sim::VirtualResource lines
/// depend on real-thread arrival order, so their percentiles are
/// recorded for the artifact but not gated.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t lanes) : lanes_(lanes) {}

  [[nodiscard]] static std::uint64_t clock_ns() noexcept {
    return sim::enabled() ? sim::now_v() : plat::now_ns();
  }

  /// The caller guarantees lane `i` is touched by exactly one task.
  void sample(std::size_t i, std::uint64_t start_ns) {
    lanes_[i].push_back(static_cast<double>(clock_ns() - start_ns));
  }

  void reserve(std::size_t i, std::size_t n) { lanes_[i].reserve(n); }

  /// Appends n/p50_ns/p99_ns/p999_ns to `line` and prints it. Call
  /// after the coforall joined (the join is the happens-before edge
  /// that makes the lanes safe to merge).
  void emit(obs::StatLine line, bool deterministic) const {
    std::vector<double> all;
    std::size_t total = 0;
    for (const auto& lane : lanes_) total += lane.size();
    all.reserve(total);
    for (const auto& lane : lanes_) {
      all.insert(all.end(), lane.begin(), lane.end());
    }
    std::sort(all.begin(), all.end());
    line.kv("det", static_cast<std::uint64_t>(deterministic ? 1 : 0))
        .kv("n", static_cast<std::uint64_t>(all.size()))
        .kv("p50_ns", quantile_u64(all, 0.50))
        .kv("p99_ns", quantile_u64(all, 0.99))
        .kv("p999_ns", quantile_u64(all, 0.999))
        .print();
  }

 private:
  [[nodiscard]] static std::uint64_t quantile_u64(
      const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0;
    return static_cast<std::uint64_t>(
        std::llround(util::quantile_sorted(sorted, q)));
  }

  std::vector<std::vector<double>> lanes_;
};

/// Measures one coforall_tasks region: returns aggregate throughput in
/// operations per second of (virtual or wall) time.
template <typename Body>
double measure_tasks(rt::Cluster& cluster, std::uint32_t tasks_per_locale,
                     std::uint64_t total_ops, bool wallclock, Body&& body) {
  if (wallclock) {
    plat::Timer timer;
    cluster.coforall_tasks(tasks_per_locale, body);
    const double s = timer.elapsed_s();
    return s > 0 ? static_cast<double>(total_ops) / s : 0.0;
  }
  sim::TaskClock root;
  {
    sim::ClockScope scope(root);
    cluster.coforall_tasks(tasks_per_locale, body);
  }
  const double s = static_cast<double>(root.vtime_ns) * 1e-9;
  return s > 0 ? static_cast<double>(total_ops) / s : 0.0;
}

// ---- Implementation adapters (uniform construction + naming) ----------

struct EbrArrayImpl {
  /// Whether virtual-time per-op latencies replay exactly across runs
  /// (pure per-task charges; see LatencyRecorder).
  static constexpr bool kDetVtime = false;
  static constexpr const char* kName = "EBRArray";
  using type = RCUArray<std::uint64_t, EbrPolicy>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, typename type::Options{bs, nullptr});
  }
};

struct LegacyEbrArrayImpl {
  /// Whether virtual-time per-op latencies replay exactly across runs
  /// (pure per-task charges; see LatencyRecorder).
  static constexpr bool kDetVtime = false;
  static constexpr const char* kName = "EBRArray-legacy";
  using type = RCUArray<std::uint64_t, LegacyEbrPolicy>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, typename type::Options{bs, nullptr});
  }
};

struct QsbrArrayImpl {
  /// Whether virtual-time per-op latencies replay exactly across runs
  /// (pure per-task charges; see LatencyRecorder).
  static constexpr bool kDetVtime = true;
  static constexpr const char* kName = "QSBRArray";
  using type = RCUArray<std::uint64_t, QsbrPolicy>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, typename type::Options{bs, nullptr});
  }
};

struct IbrArrayImpl {
  /// Era reservation slots are shared sim::VirtualResource lines, so
  /// per-op virtual times depend on real-thread arrival order.
  static constexpr bool kDetVtime = false;
  static constexpr const char* kName = "IBRArray";
  using type = RCUArray<std::uint64_t, IbrPolicy>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, typename type::Options{bs, nullptr});
  }
};

struct HazardErasArrayImpl {
  /// Era reservation slots are shared sim::VirtualResource lines, so
  /// per-op virtual times depend on real-thread arrival order.
  static constexpr bool kDetVtime = false;
  static constexpr const char* kName = "HEArray";
  using type = RCUArray<std::uint64_t, HazardErasPolicy>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, typename type::Options{bs, nullptr});
  }
};

struct ChapelArrayImpl {
  /// Whether virtual-time per-op latencies replay exactly across runs
  /// (pure per-task charges; see LatencyRecorder).
  static constexpr bool kDetVtime = true;
  static constexpr const char* kName = "ChapelArray";
  using type = baseline::UnsafeArray<std::uint64_t>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, bs);
  }
};

struct SyncArrayImpl {
  /// Whether virtual-time per-op latencies replay exactly across runs
  /// (pure per-task charges; see LatencyRecorder).
  static constexpr bool kDetVtime = false;
  static constexpr const char* kName = "SyncArray";
  using type = baseline::SyncArray<std::uint64_t>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, bs);
  }
};

struct RwlockArrayImpl {
  /// Whether virtual-time per-op latencies replay exactly across runs
  /// (pure per-task charges; see LatencyRecorder).
  static constexpr bool kDetVtime = false;
  static constexpr const char* kName = "RwlockArray";
  using type = baseline::RwlockArray<std::uint64_t>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, bs);
  }
};

struct HazardArrayImpl {
  /// Whether virtual-time per-op latencies replay exactly across runs
  /// (pure per-task charges; see LatencyRecorder).
  static constexpr bool kDetVtime = false;
  static constexpr const char* kName = "HazardArray";
  using type = baseline::HazardArray<std::uint64_t>;
  static std::unique_ptr<type> make(rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, bs);
  }
};

/// The Figure 2 update-indexing workload for one (impl, locale count):
/// every task performs ops_per_task update operations on random or
/// sequential indices. When `bench_name` is non-null every write is
/// individually timed and the merged p50/p99/p999 emitted as an
/// `obs_stat` line (exact-match gated in CI when Impl::kDetVtime).
template <typename Impl>
double run_indexing(const Params& p, std::uint64_t num_locales,
                    Pattern pattern, const char* bench_name = nullptr) {
  rt::Cluster cluster({.num_locales = static_cast<std::uint32_t>(num_locales),
                       .workers_per_locale = p.tasks_per_locale + 2});
  auto arr = Impl::make(cluster, p.array_elems, p.block_size);
  const std::uint64_t cap = p.array_elems;
  const std::uint64_t total_ops = num_locales *
                                  static_cast<std::uint64_t>(p.tasks_per_locale) *
                                  p.ops_per_task;

  const std::size_t lanes =
      static_cast<std::size_t>(num_locales) * p.tasks_per_locale;
  LatencyRecorder latency(bench_name != nullptr ? lanes : 0);
  const double tput = measure_tasks(
      cluster, p.tasks_per_locale, total_ops, p.wallclock,
      [&](std::uint32_t l, std::uint32_t t) {
        const std::uint64_t gid =
            static_cast<std::uint64_t>(l) * p.tasks_per_locale + t;
        const auto lane = static_cast<std::size_t>(gid);
        if (bench_name != nullptr) latency.reserve(lane, p.ops_per_task);
        if (pattern == Pattern::kRandom) {
          plat::Xoshiro256 rng(plat::mix64(p.seed ^ (gid + 1)));
          for (std::uint64_t n = 0; n < p.ops_per_task; ++n) {
            const std::uint64_t i = rng.next_below(cap);
            if (bench_name != nullptr) {
              const std::uint64_t t0 = LatencyRecorder::clock_ns();
              arr->write(i, n);
              latency.sample(lane, t0);
            } else {
              arr->write(i, n);
            }
          }
        } else {
          const std::uint64_t start = (gid * p.ops_per_task) % cap;
          for (std::uint64_t n = 0; n < p.ops_per_task; ++n) {
            const std::uint64_t i = (start + n) % cap;
            if (bench_name != nullptr) {
              const std::uint64_t t0 = LatencyRecorder::clock_ns();
              arr->write(i, n);
              latency.sample(lane, t0);
            } else {
              arr->write(i, n);
            }
          }
        }
      });

  // Machine-readable reclaimer counters for the bench-json pipeline
  // (scripts/run_benchmarks.py). reads/retries are nonzero only in
  // -DRCUA_STATS=ON builds; epoch_advances is always live.
  constexpr bool kHasEbrStats = requires {
    requires !Impl::type::uses_qsbr;
    arr->ebr_stats_at(0u);
  };
  if constexpr (kHasEbrStats) {
    std::uint64_t reads = 0, retries = 0, advances = 0;
    for (std::uint64_t l = 0; l < num_locales; ++l) {
      const auto s = arr->ebr_stats_at(static_cast<std::uint32_t>(l));
      reads += s.reads;
      retries += s.read_retries;
      advances += s.epoch_advances;
    }
    obs::StatLine("bench_stat")
        .kv("impl", Impl::kName)
        .kv("locales", num_locales)
        .kv("reads", reads)
        .kv("retries", retries)
        .kv("epoch_advances", advances)
        .print();
  }

  if (bench_name != nullptr) {
    // Per-op latency percentiles (virtual-time unless RCUA_WALLCLOCK=1;
    // wallclock runs are inherently nondeterministic, so not gated).
    latency.emit(obs::StatLine("obs_stat")
                     .kv("bench", bench_name)
                     .kv("impl", Impl::kName)
                     .kv("locales", num_locales),
                 Impl::kDetVtime && !p.wallclock);
  }

  // QSBR best case in the paper uses no checkpoints; drop whatever the
  // construction-time resizes deferred before tearing down.
  reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

/// Runs the full Figure 2 style sweep and prints the table. A non-null
/// `bench_name` turns on per-op latency sampling (obs_stat lines).
template <typename... Impls>
void run_indexing_figure(const Params& p, Pattern pattern,
                         const char* bench_name = nullptr) {
  std::vector<std::string> header{"locales"};
  (header.push_back(Impls::kName), ...);
  util::Table table(header);
  for (const std::uint64_t L : p.locales) {
    std::vector<std::string> row{std::to_string(L)};
    (row.push_back(
         util::Table::num(run_indexing<Impls>(p, L, pattern, bench_name))),
     ...);
    table.add_row(std::move(row));
    std::printf("... locales=%llu done\n",
                static_cast<unsigned long long>(L));
  }
  std::printf("\nthroughput (ops/sec, %s indexing):\n", pattern_name(pattern));
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
}

}  // namespace rcua::bench
