// Ablation: reclamation/protection scheme shoot-out on the identical
// update-indexing workload — the comparison the paper's introduction
// makes qualitatively (locks don't scale; hazard pointers cost every
// read; QSBR is near-free; the TLS-free EBR pays for its collective
// counters).
//
// Adds RwlockArray and HazardArray to the Figure-2-style sweep.

#include "bench_common.hpp"

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: protection schemes (random update indexing)",
      "(not a paper figure) same workload as Fig 2a across all five "
      "protection schemes",
      "expected: QSBR ~ unsynchronized > striped EBR >> legacy EBR ~ "
      "hazard pointers >> rwlock > global lock");
  run_indexing_figure<ChapelArrayImpl, QsbrArrayImpl, EbrArrayImpl,
                      LegacyEbrArrayImpl, HazardArrayImpl, RwlockArrayImpl,
                      SyncArrayImpl>(p, Pattern::kRandom, "reclaim");
  return 0;
}
