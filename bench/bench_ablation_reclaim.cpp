// Ablation: reclamation/protection scheme shoot-out on the identical
// update-indexing workload — the comparison the paper's introduction
// makes qualitatively (locks don't scale; hazard pointers cost every
// read; QSBR is near-free; the TLS-free EBR pays for its collective
// counters).
//
// Adds RwlockArray and HazardArray to the Figure-2-style sweep, plus
// the bounded-memory era policies (IBR, hazard eras — DESIGN.md §13) so
// their read-side cost lands on the same axis.

#include "bench_common.hpp"

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: protection schemes (random update indexing)",
      "(not a paper figure) same workload as Fig 2a across all "
      "protection schemes",
      "expected: QSBR ~ unsynchronized > striped EBR ~ IBR ~ hazard eras "
      ">> legacy EBR ~ hazard pointers >> rwlock > global lock");
  run_indexing_figure<ChapelArrayImpl, QsbrArrayImpl, EbrArrayImpl,
                      LegacyEbrArrayImpl, IbrArrayImpl, HazardErasArrayImpl,
                      HazardArrayImpl, RwlockArrayImpl,
                      SyncArrayImpl>(p, Pattern::kRandom, "reclaim");
  return 0;
}
