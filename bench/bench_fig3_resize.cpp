// Figure 3: 1024 resize operations in increments of 1024 elements,
// growing from zero capacity to 1M, for ChapelArray / QSBRArray /
// EBRArray. RCUArray's recycling clone avoids ChapelArray's
// copy-into-larger-storage; the paper reports both RCU variants >= 4x
// faster.
//
// RCUA_RESIZE_STEPS / RCUA_RESIZE_INCREMENT override the defaults (which
// are the paper's real values — this bench is cheap enough to run at full
// scale).

#include "bench_common.hpp"

namespace {

using namespace rcua::bench;

template <typename Impl>
double run_resize(const Params& p, std::uint64_t num_locales,
                  std::uint64_t steps, std::uint64_t increment) {
  rcua::rt::Cluster cluster(
      {.num_locales = static_cast<std::uint32_t>(num_locales),
       .workers_per_locale = 2});
  auto arr = Impl::make(cluster, 0, p.block_size);

  double tput;
  if (p.wallclock) {
    rcua::plat::Timer timer;
    for (std::uint64_t i = 0; i < steps; ++i) arr->resize_add(increment);
    tput = static_cast<double>(steps) / timer.elapsed_s();
  } else {
    rcua::sim::TaskClock root;
    {
      rcua::sim::ClockScope scope(root);
      for (std::uint64_t i = 0; i < steps; ++i) arr->resize_add(increment);
    }
    tput = static_cast<double>(steps) /
           (static_cast<double>(root.vtime_ns) * 1e-9);
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({});
  const std::uint64_t steps = rcua::util::env_u64("RCUA_RESIZE_STEPS", 1024);
  const std::uint64_t increment =
      rcua::util::env_u64("RCUA_RESIZE_INCREMENT", 1024);
  p.print_banner(
      "Figure 3: Resize (1024 increments, 1024 times, 0 -> 1M elements)",
      "1024 serial resize ops of 1024 elements each, 2-32 locales",
      "QSBRArray ~ EBRArray, both exceeding ChapelArray by over 4x "
      "(no deep copy of blocks, no cache pollution)");

  rcua::util::Table table(
      {"locales", "EBRArray", "QSBRArray", "ChapelArray", "RCU/Chapel"});
  for (const std::uint64_t L : p.locales) {
    const double ebr = run_resize<EbrArrayImpl>(p, L, steps, increment);
    const double qsbr = run_resize<QsbrArrayImpl>(p, L, steps, increment);
    const double chapel = run_resize<ChapelArrayImpl>(p, L, steps, increment);
    table.add_row({std::to_string(L), rcua::util::Table::num(ebr),
                   rcua::util::Table::num(qsbr),
                   rcua::util::Table::num(chapel),
                   rcua::util::Table::fixed(
                       chapel > 0 ? ((ebr + qsbr) / 2.0) / chapel : 0, 2)});
    std::printf("... locales=%llu done\n",
                static_cast<unsigned long long>(L));
  }
  std::printf("\nresize throughput (resize ops/sec):\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
