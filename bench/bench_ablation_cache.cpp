// Ablation: per-locale remote block cache (DESIGN.md §11).
//
// The async bulk path (§10) made remote traffic cheap per op; the block
// cache makes repeated traffic disappear entirely: a Zipfian hot set
// whose working set fits in the cache turns O(ops) remote GETs into
// O(hot blocks) fills. This bench sweeps cache capacity (off, one
// block, 1% / 10% / 100% of the array) against Zipfian theta (the skew
// generator from bench_ablation_skew) over a pure read workload, one
// task per locale so the hit/miss/fill/eviction counters are a
// deterministic function of the workload (gated by
// scripts/check_bench_gate.py alongside gets/puts/executes).
//
// Reads agree with the cache off by construction (write-through +
// version/generation self-invalidation, no broadcast); the bench proves
// it cheaply by checksumming every cell and failing on any divergence
// from the cap=off cell.

#include "bench_common.hpp"
#include "util/workload.hpp"

#include <atomic>
#include <span>
#include <utility>
#include <vector>

namespace {

using namespace rcua::bench;

struct CacheTotals {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t executes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
};

/// One (theta, capacity) cell: every locale runs ONE task of Zipfian
/// reads over the whole array (single consumer per locale keeps the
/// cache counters deterministic). Returns throughput; fills `out` with
/// the comm + cache counters and `out_sum` with the read checksum.
double run_cfg(const Params& p, std::uint32_t num_locales, double theta,
               double zetan, const char* cap_name, std::size_t cap_bytes,
               CacheTotals* out, std::uint64_t* out_sum,
               std::uint64_t* out_ops) {
  rcua::rt::Cluster cluster(
      {.num_locales = num_locales, .workers_per_locale = 4});
  rcua::RCUArray<std::uint64_t, rcua::QsbrPolicy> arr(
      cluster, p.array_elems,
      {.block_size = p.block_size, .cache_capacity_bytes = cap_bytes});

  // Deterministic content so the per-cell checksum is comparable.
  {
    std::vector<std::uint64_t> vals(p.array_elems);
    for (std::uint64_t i = 0; i < p.array_elems; ++i) {
      vals[i] = rcua::plat::mix64(i);
    }
    arr.bulk_write(0, std::span<const std::uint64_t>(vals.data(),
                                                     vals.size()));
  }

  // A fill fetches a whole block through one remote execute; it pays
  // off only when the block is re-read enough times afterwards. Scale
  // the read count so the per-block reuse is high enough for that
  // regime to be visible even in the smoke configuration (the strict
  // >=5x CI bound lives in test_block_cache.cpp, at ~1000 reads per hot
  // block).
  const std::uint64_t reads_per_task = p.ops_per_task * 8;
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(num_locales) * reads_per_task;
  std::atomic<std::uint64_t> sum{0};

  // The fill above records PUTs (and bumps generations); measure from a
  // clean slate so the gated counters cover exactly the read workload.
  cluster.comm().reset();
  LatencyRecorder latency(num_locales);
  const double tput = measure_tasks(
      cluster, /*tasks_per_locale=*/1, total_ops, p.wallclock,
      [&](std::uint32_t l, std::uint32_t) {
        rcua::util::ZipfGenerator zipf(p.array_elems, theta,
                                       rcua::plat::mix64(p.seed ^ (l + 1)),
                                       zetan);
        latency.reserve(l, reads_per_task);
        std::uint64_t acc = 0;
        for (std::uint64_t n = 0; n < reads_per_task; ++n) {
          const std::uint64_t i = zipf.next();
          const std::uint64_t t0 = LatencyRecorder::clock_ns();
          acc += arr.read(i);
          latency.sample(l, t0);
        }
        sum.fetch_add(acc, std::memory_order_relaxed);
      });

  out->gets = cluster.comm().total_gets();
  out->puts = cluster.comm().total_puts();
  out->executes = cluster.comm().total_executes();
  out->hits = cluster.comm().total_cache_hits();
  out->misses = cluster.comm().total_cache_misses();
  out->fills = cluster.comm().total_cache_fills();
  out->evictions = cluster.comm().total_cache_evictions();
  *out_sum = sum.load(std::memory_order_relaxed);
  *out_ops = total_ops;
  // Per-read latency percentiles: one reader task per locale, QSBR
  // charges are pure per-task, so the virtual-time values are exact-
  // match gated (det=1) like the cache counters themselves.
  latency.emit(rcua::obs::StatLine("obs_stat")
                   .kv("bench", "cache")
                   .kv_fixed("theta", theta, 2)
                   .kv("cap", cap_name)
                   .kv("locales", num_locales),
               !p.wallclock);
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: remote block cache, capacity x skew (4 locales)",
      "(not a paper figure) Zipfian read hot set vs cache capacity "
      "(off, 1 block, 1% / 10% / 100% of the array)",
      "remote ops collapse from O(ops) to O(hot blocks) once the hot "
      "set fits; a capacity-starved cache is actively HARMFUL (every "
      "miss fetches a whole block, then evicts it unused); the cache "
      "counters are deterministic and CI-gated (DESIGN.md §11)");

  const std::uint32_t kLocales = 4;
  const std::size_t elem_bytes = sizeof(std::uint64_t);
  const std::size_t array_bytes =
      static_cast<std::size_t>(p.array_elems) * elem_bytes;
  const std::size_t block_bytes = p.block_size * elem_bytes;
  const std::pair<const char*, std::size_t> caps[] = {
      {"off", 0},
      {"1blk", block_bytes},
      {"1pct", array_bytes / 100},
      {"10pct", array_bytes / 10},
      {"100pct", array_bytes},
  };

  bool checksum_ok = true;
  rcua::util::Table table({"theta", "cap", "tput", "speedup", "hits",
                           "misses", "fills", "evictions"});
  for (const double theta : {0.2, 0.5, 0.8, 0.99}) {
    const double zetan =
        rcua::util::ZipfGenerator::compute_zetan(p.array_elems, theta);
    double off_tput = 0.0;
    std::uint64_t off_sum = 0;
    for (const auto& [cap_name, cap_bytes] : caps) {
      CacheTotals c;
      std::uint64_t sum = 0, ops = 0;
      const double tput = run_cfg(p, kLocales, theta, zetan, cap_name,
                                  cap_bytes, &c, &sum, &ops);
      if (cap_bytes == 0) {
        off_tput = tput;
        off_sum = sum;
      } else if (sum != off_sum) {
        std::fprintf(stderr,
                     "FAIL: theta=%.2f cap=%s read checksum %llu != "
                     "uncached %llu — the cache served a wrong value\n",
                     theta, cap_name,
                     static_cast<unsigned long long>(sum),
                     static_cast<unsigned long long>(off_sum));
        checksum_ok = false;
      }
      table.add_row({rcua::util::Table::fixed(theta, 2), cap_name,
                     rcua::util::Table::num(tput),
                     rcua::util::Table::fixed(
                         off_tput > 0 ? tput / off_tput : 0.0, 2),
                     std::to_string(c.hits), std::to_string(c.misses),
                     std::to_string(c.fills),
                     std::to_string(c.evictions)});
      // Machine-readable counters for the bench-json pipeline and the
      // deterministic CI gate (scripts/check_bench_gate.py).
      rcua::obs::StatLine("comm_stat")
          .kv_fixed("theta", theta, 2)
          .kv("cap", cap_name)
          .kv("gets", c.gets)
          .kv("puts", c.puts)
          .kv("executes", c.executes)
          .kv("hits", c.hits)
          .kv("misses", c.misses)
          .kv("fills", c.fills)
          .kv("evictions", c.evictions)
          .kv("ops", ops)
          .print();
    }
    std::printf("... theta=%.2f done\n", theta);
  }
  std::printf("\nthroughput (reads/sec), speedup vs cache off:\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return checksum_ok ? 0 : 1;
}
