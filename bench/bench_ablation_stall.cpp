// Ablation: stall-tolerant reclamation (the grace-period watchdog).
//
// Readers hammer an EBR-protected RCUArray while a FaultPlan randomly
// stalls them mid-read-section; the main thread meanwhile performs a
// train of resize_adds. The sweep compares drain deadlines, from the
// paper's blocking behaviour (deadline 0: every resize waits out the
// slowest stalled reader) to progressively tighter deadlines where the
// writer defers the old spine onto the overflow retire list and moves
// on. This is wall-clock by construction — injected stalls are real
// sleeps — so the virtual-time mode is not offered.
//
// Extra knobs on top of bench_common's:
//
//   RCUA_STALL_LIST   comma list of drain deadlines in ns; 0 = blocking
//                     (default "0,100000,1000000")
//   RCUA_STALL_NS     injected reader-stall duration (default 2000000)
//   RCUA_STALL_PROB_M stalls per million read consultations (default 200)
//   RCUA_RESIZES      resize_adds per cell (default 64)
//   RCUA_THREADS      reader thread count (default 4; first element used)
//
// Expected shape: blocking resize throughput collapses to roughly
// 1/stall_ns as stalls land, while deadline columns hold their rate and
// pay for it in peak overflow bytes — which the final flush returns to
// zero, demonstrating the watchdog's bounded-memory contract.

#include "bench_common.hpp"

#include <atomic>
#include <thread>

#include "reclaim/stall_monitor.hpp"
#include "runtime/fault_plan.hpp"

namespace {

using namespace rcua::bench;
namespace reclaim = rcua::reclaim;
namespace rt = rcua::rt;

struct CellResult {
  double resizes_per_sec = 0.0;
  double mean_resize_ms = 0.0;
  double max_resize_ms = 0.0;
  std::uint64_t stalled_spines = 0;
  std::size_t peak_overflow_bytes = 0;
  std::size_t leftover_bytes = 0;  // after the final flush; must be 0
};

CellResult run_cell(std::uint64_t deadline_ns, std::uint64_t stall_ns,
                    double stall_prob, std::uint32_t readers,
                    std::uint64_t resizes, const Params& p) {
  rt::FaultPlan plan(p.seed);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});

  reclaim::StallMonitor monitor(/*budget_bytes=*/0,
                                reclaim::StallMonitor::Escalation::kWarn);
  monitor.set_sink(nullptr);  // silent: the table reports totals

  using Array = rcua::RCUArray<std::uint64_t, rcua::EbrPolicy>;
  Array::Options opts;
  opts.block_size = p.block_size;
  opts.stall_policy.deadline_ns = deadline_ns;
  opts.stall_policy.park_ns = 20 * 1000;
  opts.stall_monitor = &monitor;
  Array arr(cluster, p.block_size, opts);

  plan.add({.action = rt::FaultPlan::Action::kStallReader,
            .locale = rt::FaultPlan::kAnyLocale,
            .fire_from = 1,
            .fire_count = UINT64_MAX,
            .probability = stall_prob,
            .delay_ns = stall_ns});
  cluster.set_fault_plan(&plan);

  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (std::uint32_t r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      std::uint64_t i = r;
      while (!stop.load(std::memory_order_relaxed)) {
        arr.read(i++ % p.block_size);
      }
    });
  }

  CellResult out;
  rcua::plat::Timer total;
  double max_ms = 0.0;
  for (std::uint64_t n = 0; n < resizes; ++n) {
    rcua::plat::Timer one;
    arr.resize_add(p.block_size);
    max_ms = std::max(max_ms, one.elapsed_s() * 1e3);
  }
  const double total_s = total.elapsed_s();

  stop.store(true);
  for (auto& t : pool) t.join();
  cluster.set_fault_plan(nullptr);

  out.resizes_per_sec =
      total_s > 0 ? static_cast<double>(resizes) / total_s : 0.0;
  out.mean_resize_ms =
      static_cast<double>(resizes) > 0 ? total_s * 1e3 / resizes : 0.0;
  out.max_resize_ms = max_ms;
  out.stalled_spines = arr.stalled_spines();
  out.peak_overflow_bytes = monitor.peak_overflow_bytes();
  // With every reader gone the parity columns are empty: one flush must
  // return the overflow list (and the monitor's byte count) to zero.
  arr.reclaim_overflow();
  out.leftover_bytes = arr.overflow_pending_bytes();
  return out;
}

}  // namespace

int main() {
  Params p = Params::from_env({.block_size = 256});
  const auto deadlines =
      rcua::util::env_u64_list("RCUA_STALL_LIST", {0, 100 * 1000, 1000 * 1000});
  const std::uint64_t stall_ns =
      rcua::util::env_u64("RCUA_STALL_NS", 2 * 1000 * 1000);
  const double stall_prob =
      static_cast<double>(rcua::util::env_u64("RCUA_STALL_PROB_M", 200)) / 1e6;
  const std::uint64_t resizes = rcua::util::env_u64("RCUA_RESIZES", 64);
  const auto readers = static_cast<std::uint32_t>(
      rcua::util::env_u64_list("RCUA_THREADS", {4}).front());

  std::printf("== Ablation: stall-tolerant reclamation ==\n");
  std::printf(
      "workload       : %u readers under injected %.1f ms stalls "
      "(%.0f/M reads), %llu resize_adds\n",
      readers, stall_ns * 1e-6, stall_prob * 1e6,
      static_cast<unsigned long long>(resizes));
  std::printf("this run       : block=%zu mode=wallclock (stalls are real)\n\n",
              p.block_size);

  rcua::util::Table table({"deadline_us", "resizes/s", "mean_ms", "max_ms",
                           "deferred", "peak_kib", "leftover"});
  double blocking_rate = 0.0, best_deadline_rate = 0.0;
  for (const std::uint64_t d : deadlines) {
    const CellResult r =
        run_cell(d, stall_ns, stall_prob, readers, resizes, p);
    table.add_row({d == 0 ? "blocking" : rcua::util::Table::num(d / 1e3),
                   rcua::util::Table::num(r.resizes_per_sec),
                   rcua::util::Table::fixed(r.mean_resize_ms, 3),
                   rcua::util::Table::fixed(r.max_resize_ms, 3),
                   std::to_string(r.stalled_spines),
                   rcua::util::Table::fixed(
                       static_cast<double>(r.peak_overflow_bytes) / 1024.0, 1),
                   std::to_string(r.leftover_bytes)});
    if (d == 0) {
      blocking_rate = r.resizes_per_sec;
    } else {
      best_deadline_rate = std::max(best_deadline_rate, r.resizes_per_sec);
    }
    std::printf("... deadline=%llu ns done (deferred %llu spines)\n",
                static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(r.stalled_spines));
  }

  std::printf("\nresize progress under reader stalls:\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);

  if (blocking_rate > 0 && best_deadline_rate > 0) {
    std::printf("\nbest deadline / blocking resize rate: %.2fx\n",
                best_deadline_rate / blocking_rate);
  }
  return 0;
}
