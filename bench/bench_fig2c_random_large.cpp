// Figure 2c: random indexing, 1M update operations per task (SyncArray
// excluded, as in the paper). Default op count is scaled down for a
// commodity host; RCUA_OPS_PER_TASK=1000000 restores paper scale.

#include "bench_common.hpp"

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 4096});
  p.print_banner(
      "Figure 2c: Random Indexing (1M operations per task; scaled)",
      "1M random update ops/task, 44 tasks/locale, 2-32 locales, "
      "SyncArray excluded",
      "QSBRArray slightly below ChapelArray under random access; "
      "EBRArray under 2% of both");
  run_indexing_figure<EbrArrayImpl, QsbrArrayImpl, ChapelArrayImpl>(
      p, Pattern::kRandom, "fig2c");
  return 0;
}
