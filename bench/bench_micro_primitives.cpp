// Micro-benchmarks (google-benchmark, real wall-clock): per-operation
// cost of the synchronization primitives on THIS host. These are the
// measured inputs behind several cost-model constants and a regression
// guard for the fast paths (an accidental seq_cst or extra indirection
// shows up here immediately).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "platform/spinlock.hpp"
#include "platform/topology.hpp"
#include "rcua.hpp"

namespace {

int max_bench_threads() {
  return std::max(2, 2 * static_cast<int>(rcua::plat::hardware_threads()));
}

void BM_EbrReadSide(benchmark::State& state) {
  rcua::reclaim::Ebr ebr;
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebr.read([&]() -> std::uint64_t& { return x; }));
  }
}
BENCHMARK(BM_EbrReadSide);

// The striped-vs-legacy A/B this PR is about, on one SHARED reclaimer
// instance so the reader RMW contention is real. At 1 thread the two
// layouts should be near-identical (both are one uncontended RMW pair);
// as threads grow the legacy layout serializes on its single counter
// line while the striped bank spreads announcements across slots.
rcua::reclaim::Ebr g_shared_striped_ebr;
rcua::reclaim::LegacyEbr g_shared_legacy_ebr;

void BM_EbrReadSharedStriped(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_shared_striped_ebr.read([] { return 0; }));
  }
}
BENCHMARK(BM_EbrReadSharedStriped)->ThreadRange(1, max_bench_threads());

void BM_EbrReadSharedLegacy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_shared_legacy_ebr.read([] { return 0; }));
  }
}
BENCHMARK(BM_EbrReadSharedLegacy)->ThreadRange(1, max_bench_threads());

void BM_EbrSynchronize(benchmark::State& state) {
  rcua::reclaim::Ebr ebr;
  for (auto _ : state) ebr.synchronize();
}
BENCHMARK(BM_EbrSynchronize);

void BM_QsbrCheckpoint(benchmark::State& state) {
  rcua::rt::ThreadRegistry registry;
  rcua::reclaim::Qsbr qsbr(registry);
  for (auto _ : state) benchmark::DoNotOptimize(qsbr.checkpoint());
}
BENCHMARK(BM_QsbrCheckpoint);

void BM_QsbrDeferAndReclaim(benchmark::State& state) {
  rcua::rt::ThreadRegistry registry;
  rcua::reclaim::Qsbr qsbr(registry);
  for (auto _ : state) {
    qsbr.defer_delete(new int(1));
    benchmark::DoNotOptimize(qsbr.checkpoint());
  }
}
BENCHMARK(BM_QsbrDeferAndReclaim);

void BM_HazardGuard(benchmark::State& state) {
  rcua::reclaim::HazardDomain dom;
  std::atomic<int*> src{new int(7)};
  for (auto _ : state) {
    rcua::reclaim::HazardDomain::Guard<int> guard(dom, src);
    benchmark::DoNotOptimize(*guard);
  }
  delete src.load();
}
BENCHMARK(BM_HazardGuard);

void BM_Spinlock(benchmark::State& state) {
  rcua::plat::Spinlock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_Spinlock);

void BM_TicketLock(benchmark::State& state) {
  rcua::plat::TicketLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_TicketLock);

void BM_Xoshiro(benchmark::State& state) {
  rcua::plat::Xoshiro256 rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(1 << 20));
}
BENCHMARK(BM_Xoshiro);

void BM_RcuArrayIndexQsbr(benchmark::State& state) {
  rcua::rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  rcua::RCUArray<std::uint64_t, rcua::QsbrPolicy> arr(cluster, 1 << 16);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.index((i++ * 7919) & 0xFFFF));
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
}
BENCHMARK(BM_RcuArrayIndexQsbr);

void BM_RcuArrayIndexEbr(benchmark::State& state) {
  rcua::rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  rcua::RCUArray<std::uint64_t, rcua::EbrPolicy> arr(cluster, 1 << 16);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.index((i++ * 7919) & 0xFFFF));
  }
}
BENCHMARK(BM_RcuArrayIndexEbr);

void BM_UnsafeArrayIndex(benchmark::State& state) {
  rcua::rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});
  rcua::baseline::UnsafeArray<std::uint64_t> arr(cluster, 1 << 16);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arr.index((i++ * 7919) & 0xFFFF));
  }
}
BENCHMARK(BM_UnsafeArrayIndex);

void BM_RcuCellRead(benchmark::State& state) {
  rcua::RcuCell<std::uint64_t> cell(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.read([](const std::uint64_t& v) { return v; }));
  }
}
BENCHMARK(BM_RcuCellRead);

void BM_VirtualResourceAcquire(benchmark::State& state) {
  rcua::sim::VirtualResource res;
  std::uint64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t = res.acquire_at(t, 3));
  }
}
BENCHMARK(BM_VirtualResourceAcquire);

}  // namespace

BENCHMARK_MAIN();
