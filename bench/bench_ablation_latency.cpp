// Ablation: network latency sensitivity. The paper's testbed is a Cray
// Aries network; this sweep scales the remote GET/PUT cost to ask how the
// Figure 2 ordering changes on slower interconnects (answer: it doesn't —
// EBR's collapse is node-local contention, QSBR tracks the
// unsynchronized array at every latency, only absolute throughput moves).

#include "bench_common.hpp"

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: remote-latency sensitivity (8 locales, random indexing)",
      "(not a paper figure) remote GET/PUT swept from Aries-like to "
      "commodity-Ethernet-like",
      "ordering is latency-invariant; QSBR/Chapel ratio stays ~1");

  rcua::util::Table table({"remote_ns", "EBRArray", "QSBRArray",
                           "ChapelArray", "QSBR/Chapel"});
  for (const double remote : {1000.0, 4000.0, 16000.0, 64000.0}) {
    auto& m = rcua::sim::CostModel::mutable_instance();
    const double saved_get = m.remote_get_ns;
    const double saved_put = m.remote_put_ns;
    const double saved_stream = m.remote_stream_ns;
    m.remote_get_ns = remote;
    m.remote_put_ns = remote;
    m.remote_stream_ns = remote / 4.0;

    const double ebr = run_indexing<EbrArrayImpl>(p, 8, Pattern::kRandom);
    const double qsbr = run_indexing<QsbrArrayImpl>(p, 8, Pattern::kRandom);
    const double chapel =
        run_indexing<ChapelArrayImpl>(p, 8, Pattern::kRandom);

    m.remote_get_ns = saved_get;
    m.remote_put_ns = saved_put;
    m.remote_stream_ns = saved_stream;

    table.add_row({rcua::util::Table::num(remote),
                   rcua::util::Table::num(ebr),
                   rcua::util::Table::num(qsbr),
                   rcua::util::Table::num(chapel),
                   rcua::util::Table::fixed(qsbr / chapel, 3)});
    std::printf("... remote_ns=%.0f done\n", remote);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
