// Ablation: the sharded service layer (DESIGN.md §14).
//
// Two deterministic phases per shard count, both CI-gated through
// scripts/check_bench_gate.py:
//
//   route   — one task per locale runs a fixed read/write mix over its
//             deterministic slice of the keyspace; the comm counters
//             (gets / puts / executes) and the service routing counters
//             (routed / routed_remote) are a pure function of the
//             workload because routing is block-cyclic arithmetic plus
//             an RCU read of the mapping table.
//   migrate — every shard live-migrates to the next locale; the comm
//             executes (block allocs + pipelined copies on the §10
//             async path) and the migration counters (migrations /
//             migrated_blocks / remaps) are a pure function of the
//             block layout.
//
// The bench proves migration correctness cheaply the way the cache
// ablation proves coherence: a full checksum before the migrations must
// equal the checksum after, else exit nonzero.

#include "bench_common.hpp"
#include "service/sharded_collection.hpp"

#include <span>
#include <vector>

namespace {

using namespace rcua::bench;

struct PhaseTotals {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t executes = 0;
};

void capture(rcua::rt::Cluster& cluster, PhaseTotals* out) {
  out->gets = cluster.comm().total_gets();
  out->puts = cluster.comm().total_puts();
  out->executes = cluster.comm().total_executes();
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: sharded service layer, routing + live migration "
      "(4 locales)",
      "(not a paper figure) fixed read/write mix vs shard count, then a "
      "full rotation of live shard migrations",
      "routing adds one RCU map read per element op (flat in shard "
      "count); migration traffic is O(blocks moved) on the async comm "
      "path; both counter sets are deterministic and CI-gated "
      "(DESIGN.md §14)");

  constexpr std::uint32_t kLocales = 4;
  bool checksum_ok = true;
  rcua::util::Table table({"shards", "route_tput", "routed_remote",
                           "migrate_execs", "migrated_blocks"});

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    rcua::rt::Cluster cluster(
        {.num_locales = kLocales, .workers_per_locale = 4});
    rcua::svc::ShardedCollection<std::uint64_t, rcua::QsbrPolicy> coll(
        cluster, p.array_elems,
        {.block_size = p.block_size,
         .shard_count = shards,
         .cache_capacity_bytes = 0});
    const std::uint64_t cap = coll.capacity();

    // Deterministic content for the migration checksum.
    {
      std::vector<std::uint64_t> vals(cap);
      for (std::uint64_t i = 0; i < cap; ++i) {
        vals[i] = rcua::plat::mix64(i ^ p.seed);
      }
      coll.bulk_write(0, std::span<const std::uint64_t>(vals.data(),
                                                        vals.size()));
    }

    // -- route phase: one task per locale, sequential slice, 1-in-4
    // writes (counters cover exactly this workload).
    cluster.comm().reset();
    const std::uint64_t total_ops =
        static_cast<std::uint64_t>(kLocales) * p.ops_per_task;
    const double tput = measure_tasks(
        cluster, /*tasks_per_locale=*/1, total_ops, p.wallclock,
        [&](std::uint32_t l, std::uint32_t) {
          const std::uint64_t start = (l * p.ops_per_task * 7) % cap;
          for (std::uint64_t n = 0; n < p.ops_per_task; ++n) {
            const std::uint64_t i = (start + n) % cap;
            if (n % 4 == 0) {
              coll.write(i, n);
            } else {
              (void)coll.read(i);
            }
          }
        });
    PhaseTotals route;
    capture(cluster, &route);
    const std::uint64_t routed = coll.routed();
    const std::uint64_t routed_remote = coll.routed_remote();
    rcua::obs::StatLine("comm_stat")
        .kv("phase", "route")
        .kv("shards", static_cast<std::uint64_t>(shards))
        .kv("gets", route.gets)
        .kv("puts", route.puts)
        .kv("executes", route.executes)
        .kv("routed", routed)
        .kv("routed_remote", routed_remote)
        .kv("ops", total_ops)
        .print();

    // -- migrate phase: checksum, rotate every shard one locale over,
    // checksum again. The reset scopes the counters to the migrations.
    std::uint64_t before = 0;
    for (const std::uint64_t v : coll.bulk_read(0, cap)) before += v;
    cluster.comm().reset();
    for (std::size_t s = 0; s < coll.shard_count(); ++s) {
      const std::uint32_t from = coll.home_of(s);
      if (!coll.migrate(s, (from + 1) % kLocales)) {
        std::fprintf(stderr, "FAIL: shard %zu migration rolled back "
                             "without a fault plan\n", s);
        checksum_ok = false;
      }
    }
    PhaseTotals mig;
    capture(cluster, &mig);
    const std::uint64_t migrations = coll.migrations();
    const std::uint64_t migrated_blocks_total = coll.migrated_blocks();
    rcua::obs::StatLine("comm_stat")
        .kv("phase", "migrate")
        .kv("shards", static_cast<std::uint64_t>(shards))
        .kv("gets", mig.gets)
        .kv("puts", mig.puts)
        .kv("executes", mig.executes)
        .kv("migrations", migrations)
        .kv("migrated_blocks", migrated_blocks_total)
        .kv("remaps", coll.remaps())
        .print();
    std::uint64_t after = 0;
    for (const std::uint64_t v : coll.bulk_read(0, cap)) after += v;
    if (after != before) {
      std::fprintf(stderr,
                   "FAIL: shards=%zu checksum %llu != pre-migration %llu "
                   "— migration lost or corrupted elements\n",
                   shards, static_cast<unsigned long long>(after),
                   static_cast<unsigned long long>(before));
      checksum_ok = false;
    }

    table.add_row({std::to_string(shards), rcua::util::Table::num(tput),
                   std::to_string(routed_remote),
                   std::to_string(mig.executes),
                   std::to_string(migrated_blocks_total)});
    rcua::reclaim::Qsbr::global().flush_unsafe();
    std::printf("... shards=%zu done\n", shards);
  }

  std::printf("\nrouting throughput (ops/sec) and migration traffic:\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return checksum_ok ? 0 : 1;
}
