// Figure 2d: sequential indexing, 1M update operations per task (scaled
// by default; RCUA_OPS_PER_TASK=1000000 restores paper scale).

#include "bench_common.hpp"

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 4096});
  p.print_banner(
      "Figure 2d: Sequential Indexing (1M operations per task; scaled)",
      "1M sequential update ops/task, 44 tasks/locale, 2-32 locales",
      "QSBRArray exceeds ChapelArray by ~1.5x on sequential access; "
      "EBRArray under 2% of both");
  run_indexing_figure<EbrArrayImpl, QsbrArrayImpl, ChapelArrayImpl>(
      p, Pattern::kSequential, "fig2d");
  return 0;
}
