// Ablation: async comm pipelining (DESIGN.md §10).
//
// The destination-aggregated bulk path (§9) turned O(elements) GETs into
// O(blocks) remote executions; this bench measures what pipelining those
// executions buys. Every configuration runs the same whole-array
// bulk_read scan (every destination touched, several spans per
// destination) and sweeps the per-destination in-flight window against
// the synchronous flush baseline, across three remote-execution
// latencies. Communication volume (GETs / PUTs / remote executes) is
// identical in every cell by construction — async changes WHEN
// completions land, never HOW MANY ops are issued — and the async
// counters (issued / completed / max in-flight) are a deterministic
// function of the workload; all of them are gated by
// scripts/check_bench_gate.py. Throughput separates the cells:
//
//   impl=sync     : PR 4's synchronous flushes (one latency per flush,
//                   serialized on the initiator)
//   impl=async-wN : window-N pipelining; w1 must never LOSE to sync
//                   (the issue cost is a carve-out of the latency, not
//                   an addition) and the default window must win big.

#include "bench_common.hpp"

#include "sim/cost_model.hpp"

namespace {

using namespace rcua::bench;

struct CommTotals {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t executes = 0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t max_inflight = 0;
};

/// One configuration: `window` == 0 is the synchronous flush baseline,
/// otherwise the async path with that per-destination window. Returns
/// throughput (elements/s); fills `out` with the comm + async counters
/// of the measured region (deterministic for a fixed env).
double run_cfg(const Params& p, std::uint32_t num_locales,
               double remote_execute_ns, std::size_t window,
               CommTotals* out, std::uint64_t* out_elems) {
  rcua::sim::CostModelOverride guard;
  rcua::sim::CostModel::mutable_instance().remote_execute_ns =
      remote_execute_ns;

  rcua::rt::Cluster cluster(
      {.num_locales = num_locales,
       .workers_per_locale = p.tasks_per_locale + 2});
  auto arr = QsbrArrayImpl::make(cluster, p.array_elems, p.block_size);
  const std::uint64_t rounds =
      p.ops_per_task / p.block_size > 0 ? p.ops_per_task / p.block_size : 1;
  const std::uint64_t elems_per_round = p.array_elems;
  const std::uint64_t total_elems = static_cast<std::uint64_t>(num_locales) *
                                    p.tasks_per_locale * rounds *
                                    elems_per_round;

  // Construction resizes record executes (and, in async mode, issues) of
  // their own; measure from a clean slate so the gated counters cover
  // exactly the workload.
  cluster.comm().reset();
  const double tput = measure_tasks(
      cluster, p.tasks_per_locale, total_elems, p.wallclock,
      [&](std::uint32_t, std::uint32_t) {
        std::vector<std::uint64_t> scratch(elems_per_round);
        for (std::uint64_t r = 0; r < rounds; ++r) {
          arr->bulk_read(0, elems_per_round, scratch.data(),
                         {.async = window != 0, .window = window});
        }
      });

  out->gets = cluster.comm().total_gets();
  out->puts = cluster.comm().total_puts();
  out->executes = cluster.comm().total_executes();
  out->issued = cluster.comm().total_async_issued();
  out->completed = cluster.comm().total_async_completed();
  out->max_inflight = cluster.comm().max_async_inflight();
  *out_elems = total_elems;
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env(
      {.ops_per_task = 2048, .array_elems = 1ULL << 14});
  p.print_banner(
      "Ablation: async comm pipelining (8 locales)",
      "(not a paper figure) in-flight window x remote latency sweep "
      "over the whole-array aggregated scan",
      "comm volume is window-invariant; async-w1 never loses to sync "
      "(issue cost is a latency carve-out); the default window "
      "overlaps per-destination latencies and remote-side processing "
      "for a >=5x scan speedup (DESIGN.md §10)");

  const std::uint32_t kLocales = 8;
  if (p.array_elems / p.block_size < kLocales) {
    std::fprintf(stderr,
                 "need at least %u blocks (RCUA_ARRAY_ELEMS / "
                 "RCUA_BLOCK_SIZE) so every locale owns one\n",
                 kLocales);
    return 1;
  }
  // window == 0 is the synchronous baseline; the rest sweep the async
  // per-destination window (32 is the RCUA_COMM_WINDOW default).
  const std::size_t windows[] = {0, 1, 4, 32, 128};
  const double latencies[] = {15000.0, 60000.0, 240000.0};
  rcua::util::Table table({"latency_ns", "impl", "tput", "executes",
                           "issued", "completed", "max_inflight"});
  for (const double lat : latencies) {
    for (const std::size_t window : windows) {
      CommTotals c;
      std::uint64_t elems = 0;
      const double tput = run_cfg(p, kLocales, lat, window, &c, &elems);
      const std::string impl =
          window == 0 ? "sync" : "async-w" + std::to_string(window);
      table.add_row({rcua::util::Table::num(lat), impl,
                     rcua::util::Table::num(tput),
                     std::to_string(c.executes), std::to_string(c.issued),
                     std::to_string(c.completed),
                     std::to_string(c.max_inflight)});
      // Machine-readable counters for the bench-json pipeline and the
      // deterministic CI gate (scripts/check_bench_gate.py).
      rcua::obs::StatLine("comm_stat")
          .kv("lat", static_cast<std::uint64_t>(lat))
          .kv("impl", impl)
          .kv("window", window)
          .kv("gets", c.gets)
          .kv("puts", c.puts)
          .kv("executes", c.executes)
          .kv("issued", c.issued)
          .kv("completed", c.completed)
          .kv("max_inflight", c.max_inflight)
          .kv("elems", elems)
          .print();
    }
    std::printf("... latency=%.0f done\n", lat);
  }
  std::printf("\nthroughput (elements/sec) and async comm counters:\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
