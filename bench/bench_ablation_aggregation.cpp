// Ablation: destination-aggregated bulk operations (DESIGN.md §9).
//
// The element API pays one recorded GET per remote element; the bulk API
// resolves the snapshot once, partitions the range by owning locale, and
// ships each destination's spans as ONE remote execution per flush. This
// bench sweeps the aggregation buffer capacity against an elementwise
// baseline across three locality skews, reporting communication volume
// (GETs / PUTs / remote executes — deterministic, gated by
// scripts/check_bench_gate.py) next to virtual-time throughput.
//
//   skew=local  : each round reads one block owned by the task's locale
//                 (aggregation has nothing to do; both sides are free)
//   skew=remote : each round reads one block owned by another locale
//   skew=mixed  : each round scans the whole array (every destination,
//                 several spans per destination, so buffer capacity
//                 decides how many flushes each scan costs)

#include "bench_common.hpp"

namespace {

using namespace rcua::bench;

enum class Skew { kLocal, kMixed, kRemote };

const char* skew_name(Skew s) {
  switch (s) {
    case Skew::kLocal: return "local";
    case Skew::kMixed: return "mixed";
    default: return "remote";
  }
}

struct CommTotals {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t executes = 0;
};

/// One configuration: `cap` == 0 is the elementwise read() baseline,
/// otherwise the bulk path with that aggregation buffer capacity.
/// Returns throughput (elements/s); fills `out` with the comm counters
/// of the measured region (deterministic for a fixed env) and emits an
/// `obs_stat` line with per-round virtual-time latency percentiles
/// (QSBR's charges are pure per-task, so det=1: exact-match gated).
double run_cfg(const Params& p, std::uint32_t num_locales, Skew skew,
               std::size_t cap, const std::string& impl_name,
               CommTotals* out, std::uint64_t* out_elems) {
  rcua::rt::Cluster cluster(
      {.num_locales = num_locales,
       .workers_per_locale = p.tasks_per_locale + 2});
  auto arr = QsbrArrayImpl::make(cluster, p.array_elems, p.block_size);
  const std::uint64_t bs = p.block_size;
  const std::uint64_t nblocks = p.array_elems / bs;
  const std::uint64_t own_blocks = nblocks / num_locales;
  const std::uint64_t rounds =
      p.ops_per_task / bs > 0 ? p.ops_per_task / bs : 1;
  const std::uint64_t elems_per_round =
      skew == Skew::kMixed ? nblocks * bs : bs;
  const std::uint64_t total_elems = static_cast<std::uint64_t>(num_locales) *
                                    p.tasks_per_locale * rounds *
                                    elems_per_round;

  // Construction resizes record executes of their own; measure from a
  // clean slate so the gated counters cover exactly the workload.
  cluster.comm().reset();
  LatencyRecorder latency(static_cast<std::size_t>(num_locales) *
                          p.tasks_per_locale);
  const double tput = measure_tasks(
      cluster, p.tasks_per_locale, total_elems, p.wallclock,
      [&](std::uint32_t l, std::uint32_t t) {
        const std::uint64_t gid =
            static_cast<std::uint64_t>(l) * p.tasks_per_locale + t;
        const auto lane = static_cast<std::size_t>(gid);
        latency.reserve(lane, rounds);
        rcua::plat::Xoshiro256 rng(rcua::plat::mix64(p.seed ^ (gid + 1)));
        std::vector<std::uint64_t> scratch(elems_per_round);
        for (std::uint64_t r = 0; r < rounds; ++r) {
          std::uint64_t first = 0;
          if (skew == Skew::kLocal) {
            // A block whose round-robin owner is this locale.
            first = (l + num_locales * rng.next_below(own_blocks)) * bs;
          } else if (skew == Skew::kRemote) {
            const std::uint64_t o =
                (l + 1 + rng.next_below(num_locales - 1)) % num_locales;
            first = (o + num_locales * rng.next_below(own_blocks)) * bs;
          }
          const std::uint64_t t0 = LatencyRecorder::clock_ns();
          if (cap == 0) {
            for (std::uint64_t i = 0; i < elems_per_round; ++i) {
              scratch[i] = arr->read(first + i);
            }
          } else {
            arr->bulk_read(first, elems_per_round, scratch.data(),
                           {.buffer_capacity = cap});
          }
          latency.sample(lane, t0);
        }
      });

  out->gets = cluster.comm().total_gets();
  out->puts = cluster.comm().total_puts();
  out->executes = cluster.comm().total_executes();
  *out_elems = total_elems;
  // Per-round (one block / one whole-array scan) latency percentiles.
  latency.emit(rcua::obs::StatLine("obs_stat")
                   .kv("bench", "aggregation")
                   .kv("skew", skew_name(skew))
                   .kv("impl", impl_name)
                   .kv("locales", num_locales),
               QsbrArrayImpl::kDetVtime && !p.wallclock);
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env(
      {.ops_per_task = 2048, .array_elems = 1ULL << 14});
  p.print_banner(
      "Ablation: destination-aggregated bulk ops (8 locales)",
      "(not a paper figure) buffer-size sweep x locality skew; "
      "copy-aggregation per Dewan & Jenkins, arXiv:2112.00068",
      "comm volume drops from O(elements) GETs to O(blocks) executes; "
      "larger buffers halve flushes on whole-array scans; throughput "
      "must beat elementwise even at buffer capacity 1");

  const std::uint32_t kLocales = 8;
  if (p.array_elems / p.block_size < kLocales) {
    std::fprintf(stderr,
                 "need at least %u blocks (RCUA_ARRAY_ELEMS / "
                 "RCUA_BLOCK_SIZE) so every locale owns one\n",
                 kLocales);
    return 1;
  }
  // cap == 0 is the elementwise baseline; the rest sweep the aggregator.
  const std::size_t caps[] = {0, 1, 256, 4096, 16384};
  rcua::util::Table table(
      {"skew", "impl", "tput", "gets", "puts", "executes"});
  for (const Skew skew : {Skew::kLocal, Skew::kMixed, Skew::kRemote}) {
    for (const std::size_t cap : caps) {
      CommTotals c;
      std::uint64_t elems = 0;
      const std::string impl =
          cap == 0 ? "elementwise" : "bulk-cap" + std::to_string(cap);
      const double tput = run_cfg(p, kLocales, skew, cap, impl, &c, &elems);
      table.add_row({skew_name(skew), impl, rcua::util::Table::num(tput),
                     std::to_string(c.gets), std::to_string(c.puts),
                     std::to_string(c.executes)});
      // Machine-readable comm counters for the bench-json pipeline and
      // the deterministic CI gate (scripts/check_bench_gate.py).
      rcua::obs::StatLine("comm_stat")
          .kv("skew", skew_name(skew))
          .kv("impl", impl)
          .kv("cap", cap)
          .kv("gets", c.gets)
          .kv("puts", c.puts)
          .kv("executes", c.executes)
          .kv("elems", elems)
          .print();
    }
    std::printf("... skew=%s done\n", skew_name(skew));
  }
  std::printf("\nthroughput (elements/sec) and comm volume:\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
