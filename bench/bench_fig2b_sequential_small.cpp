// Figure 2b: sequential indexing, 1024 update operations per task, with
// SyncArray included.

#include "bench_common.hpp"

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 1024});
  p.print_banner(
      "Figure 2b: Sequential Indexing (1024 operations per task)",
      "1024 sequential update ops/task, 44 tasks/locale, 2-32 locales",
      "SyncArray slowest; QSBRArray near-equivalent to ChapelArray on "
      "predictable access; EBRArray ~4% of ChapelArray");
  run_indexing_figure<EbrArrayImpl, QsbrArrayImpl, ChapelArrayImpl,
                      SyncArrayImpl>(p, Pattern::kSequential, "fig2b");
  return 0;
}
