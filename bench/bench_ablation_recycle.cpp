// Ablation: block recycling vs deep-copy clone — the design decision
// behind Lemma 6 ("recycling blocks of memory proves to be significantly
// faster than copying by value into larger memory", §III-C). We compare
// RCUArray's real resize against a deliberately pessimized clone that
// copies every element into fresh blocks (which is also what it would
// take to make reference-returning reads safe WITHOUT recycling:
// updates through old references would otherwise be lost).

#include "bench_common.hpp"

namespace {

using namespace rcua::bench;

/// Resize cost with the recycling clone (the real implementation).
double run_recycling(const Params& p, std::uint64_t num_locales,
                     std::uint64_t steps) {
  rcua::rt::Cluster cluster(
      {.num_locales = static_cast<std::uint32_t>(num_locales),
       .workers_per_locale = 2});
  QsbrArrayImpl::type arr(cluster, 0, {p.block_size, nullptr});
  rcua::sim::TaskClock root;
  {
    rcua::sim::ClockScope scope(root);
    for (std::uint64_t i = 0; i < steps; ++i) arr.resize_add(p.block_size);
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return static_cast<double>(steps) /
         (static_cast<double>(root.vtime_ns) * 1e-9);
}

/// Resize cost if every clone deep-copied elements: modeled by adding the
/// bulk-copy charge for the current capacity to each resize, replicated
/// per locale (each locale would copy its replica's view... the copy is of
/// the locale's local blocks).
double run_deep_copy(const Params& p, std::uint64_t num_locales,
                     std::uint64_t steps) {
  rcua::rt::Cluster cluster(
      {.num_locales = static_cast<std::uint32_t>(num_locales),
       .workers_per_locale = 2});
  QsbrArrayImpl::type arr(cluster, 0, {p.block_size, nullptr});
  const auto& m = rcua::sim::CostModel::get();
  rcua::sim::TaskClock root;
  {
    rcua::sim::ClockScope scope(root);
    for (std::uint64_t i = 0; i < steps; ++i) {
      const std::size_t elems = arr.capacity();
      arr.resize_add(p.block_size);
      // Deep-copy penalty: every locale copies its share of the blocks.
      cluster.coforall_locales([&](std::uint32_t) {
        rcua::sim::charge(m.bulk_copy_ns_per_elem *
                          static_cast<double>(elems) /
                          static_cast<double>(num_locales));
      });
    }
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return static_cast<double>(steps) /
         (static_cast<double>(root.vtime_ns) * 1e-9);
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({});
  const std::uint64_t steps = rcua::util::env_u64("RCUA_RESIZE_STEPS", 512);
  p.print_banner(
      "Ablation: recycling clone vs deep-copy clone (resize path)",
      "(design choice behind Lemma 6 / Figure 1)",
      "recycling wins and the gap widens with array size — deep copy is "
      "O(capacity) per resize, recycling is O(blocks)");

  rcua::util::Table table(
      {"locales", "recycling_ops_s", "deep_copy_ops_s", "speedup"});
  for (const std::uint64_t L : p.locales) {
    const double rec = run_recycling(p, L, steps);
    const double deep = run_deep_copy(p, L, steps);
    table.add_row({std::to_string(L), rcua::util::Table::num(rec),
                   rcua::util::Table::num(deep),
                   rcua::util::Table::fixed(rec / deep, 2)});
    std::printf("... locales=%llu done\n",
                static_cast<unsigned long long>(L));
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
