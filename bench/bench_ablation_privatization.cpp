// Ablation: what privatization buys. RCUArray replicates its metadata
// (snapshot pointer, epoch state, NextLocaleId) on every locale so the
// access path is node-local (§III-D: "both read and update operations act
// mostly on node-local metadata"). This bench compares the real array
// against a modeled *centralized-metadata* variant in which every task on
// locale != 0 must fetch the snapshot pointer from locale 0 before each
// access — what the design would cost without chpl_getPrivatizedCopy.

#include "bench_common.hpp"

namespace {

using namespace rcua::bench;

/// QSBRArray wrapper that charges a remote metadata fetch per operation
/// from any locale other than 0.
struct CentralMetaImpl {
  static constexpr const char* kName = "CentralMeta";
  // Whether virtual-time per-op latencies replay exactly across runs
  // (pure per-task charges; see LatencyRecorder). QSBR underneath, and
  // the extra metadata-fetch charge is per-task too.
  static constexpr bool kDetVtime = true;
  struct type {
    QsbrArrayImpl::type arr;
    rcua::rt::Cluster& cluster;

    type(rcua::rt::Cluster& c, std::size_t cap, std::size_t bs)
        : arr(c, cap, {bs, nullptr}), cluster(c) {}

    void write(std::size_t i, std::uint64_t v) {
      const std::uint32_t here = cluster.here();
      if (here != 0) {
        // GET of the snapshot pointer (and epoch word) from locale 0.
        cluster.comm().record_access(here, 0, false);
        rcua::sim::charge(rcua::sim::CostModel::get().remote_stream_ns);
      }
      arr.write(i, v);
    }
  };
  static std::unique_ptr<type> make(rcua::rt::Cluster& c, std::size_t cap,
                                    std::size_t bs) {
    return std::make_unique<type>(c, cap, bs);
  }
};

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: privatized vs centralized metadata (random indexing)",
      "(design choice from paper §III-D / Listing 1 privatization)",
      "privatized metadata scales with locales; centralized metadata "
      "adds a remote fetch to every op and the gap widens with locales");

  rcua::util::Table table({"locales", "Privatized", "CentralMeta", "ratio"});
  for (const std::uint64_t L : p.locales) {
    const double priv = run_indexing<QsbrArrayImpl>(p, L, Pattern::kRandom);
    const double central =
        run_indexing<CentralMetaImpl>(p, L, Pattern::kRandom);
    table.add_row({std::to_string(L), rcua::util::Table::num(priv),
                   rcua::util::Table::num(central),
                   rcua::util::Table::fixed(priv / central, 2)});
    std::printf("... locales=%llu done\n",
                static_cast<unsigned long long>(L));
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
