// Figure 4: QSBR checkpoint overhead. 44 tasks on a single locale each
// perform 1M update operations (scaled by default), invoking a QSBR
// checkpoint every k operations, k swept from 1 upward; EBRArray running
// the same workload (no checkpoints) is the baseline, as in the paper,
// which reports QSBR beating EBR even at one checkpoint per operation.

#include "bench_common.hpp"

namespace {

using namespace rcua::bench;

double run_qsbr_with_checkpoints(const Params& p,
                                 std::uint64_t ops_per_checkpoint) {
  rcua::rt::Cluster cluster(
      {.num_locales = 1, .workers_per_locale = p.tasks_per_locale + 2});
  QsbrArrayImpl::type arr(cluster, p.array_elems,
                          {p.block_size, nullptr});
  const std::uint64_t cap = p.array_elems;
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(p.tasks_per_locale) * p.ops_per_task;

  const double tput = measure_tasks(
      cluster, p.tasks_per_locale, total_ops, p.wallclock,
      [&](std::uint32_t, std::uint32_t t) {
        const std::uint64_t start =
            (static_cast<std::uint64_t>(t) * p.ops_per_task) % cap;
        for (std::uint64_t n = 0; n < p.ops_per_task; ++n) {
          arr.write((start + n) % cap, n);
          if (ops_per_checkpoint != 0 && (n + 1) % ops_per_checkpoint == 0) {
            rcua::reclaim::Qsbr::global().checkpoint();
          }
        }
      });
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

double run_ebr_baseline(const Params& p) {
  rcua::rt::Cluster cluster(
      {.num_locales = 1, .workers_per_locale = p.tasks_per_locale + 2});
  EbrArrayImpl::type arr(cluster, p.array_elems, {p.block_size, nullptr});
  const std::uint64_t cap = p.array_elems;
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(p.tasks_per_locale) * p.ops_per_task;
  return measure_tasks(
      cluster, p.tasks_per_locale, total_ops, p.wallclock,
      [&](std::uint32_t, std::uint32_t t) {
        const std::uint64_t start =
            (static_cast<std::uint64_t>(t) * p.ops_per_task) % cap;
        for (std::uint64_t n = 0; n < p.ops_per_task; ++n) {
          arr.write((start + n) % cap, n);
        }
      });
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 100000});
  p.print_banner(
      "Figure 4: Overhead of QSBR checkpoints (single locale)",
      "44 tasks x 1M sequential update ops, checkpoint every k ops, "
      "k in {1..}; EBRArray throughput from Fig 2d as baseline",
      "QSBR exceeds EBR even with a checkpoint after every operation; "
      "throughput rises with ops/checkpoint toward the no-checkpoint "
      "plateau");

  const auto ks = rcua::util::env_u64_list(
      "RCUA_CHECKPOINT_SWEEP", {1, 4, 16, 64, 256, 1024, 4096, 16384});

  const double ebr = run_ebr_baseline(p);
  rcua::util::Table table({"ops/checkpoint", "QSBR", "EBR baseline"});
  for (const std::uint64_t k : ks) {
    const double qsbr = run_qsbr_with_checkpoints(p, k);
    table.add_row({std::to_string(k), rcua::util::Table::num(qsbr),
                   rcua::util::Table::num(ebr)});
    std::printf("... ops/checkpoint=%llu done\n",
                static_cast<unsigned long long>(k));
  }
  const double no_cp = run_qsbr_with_checkpoints(p, 0);
  table.add_row({"none", rcua::util::Table::num(no_cp),
                 rcua::util::Table::num(ebr)});

  std::printf("\nthroughput (ops/sec):\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
