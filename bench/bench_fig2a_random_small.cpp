// Figure 2a: random indexing, 1024 update operations per task, 44 tasks
// per locale, EBRArray / QSBRArray / ChapelArray / SyncArray.
//
// The small op count is the paper's own concession to SyncArray ("These
// benchmarks choose a smaller number of operations to allow for SyncArray
// to finish within a reasonable amount of time"); it also means constant
// task-launch overheads compress the ratios relative to Figure 2c.

#include "bench_common.hpp"

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 1024});
  p.print_banner(
      "Figure 2a: Random Indexing (1024 operations per task)",
      "1024 random update ops/task, 44 tasks/locale, 2-32 locales, "
      "Cray XC50",
      "SyncArray slowest and flat/degrading; QSBRArray slightly below "
      "ChapelArray; EBRArray scales but at ~4% of ChapelArray");
  run_indexing_figure<EbrArrayImpl, QsbrArrayImpl, ChapelArrayImpl,
                      SyncArrayImpl>(p, Pattern::kRandom, "fig2a");
  return 0;
}
