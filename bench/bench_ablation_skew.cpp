// Ablation: access skew. The paper evaluates uniform-random and
// sequential indexing only; real table workloads are Zipfian. Skew
// concentrates traffic on a few hot blocks, which (a) improves effective
// locality (hot remote blocks stream instead of paying first-touch cost)
// and (b) does nothing to EBR's bottleneck, which is the per-locale
// reader counters, not the data.

#include "bench_common.hpp"
#include "util/workload.hpp"

namespace {

using namespace rcua::bench;

template <typename Impl>
double run_zipf(const Params& p, std::uint64_t num_locales, double theta,
                double zetan) {
  rcua::rt::Cluster cluster(
      {.num_locales = static_cast<std::uint32_t>(num_locales),
       .workers_per_locale = p.tasks_per_locale + 2});
  auto arr = Impl::make(cluster, p.array_elems, p.block_size);
  const std::uint64_t total_ops = num_locales *
                                  static_cast<std::uint64_t>(p.tasks_per_locale) *
                                  p.ops_per_task;
  const double tput = measure_tasks(
      cluster, p.tasks_per_locale, total_ops, p.wallclock,
      [&](std::uint32_t l, std::uint32_t t) {
        const std::uint64_t gid =
            static_cast<std::uint64_t>(l) * p.tasks_per_locale + t;
        rcua::util::ZipfGenerator zipf(p.array_elems, theta,
                                       rcua::plat::mix64(p.seed ^ (gid + 1)),
                                       zetan);
        for (std::uint64_t n = 0; n < p.ops_per_task; ++n) {
          arr->write(zipf.next(), n);
        }
      });
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: Zipfian access skew (8 locales)",
      "(not a paper figure) theta swept 0.2 -> 0.99 (YCSB default)",
      "throughput rises with skew for QSBR/Chapel (hot blocks stream); "
      "EBR stays pinned by its reader-counter serialization");

  rcua::util::Table table({"theta", "EBRArray", "QSBRArray", "ChapelArray"});
  for (const double theta : {0.2, 0.5, 0.8, 0.99}) {
    const double zetan =
        rcua::util::ZipfGenerator::compute_zetan(p.array_elems, theta);
    const double ebr = run_zipf<EbrArrayImpl>(p, 8, theta, zetan);
    const double qsbr = run_zipf<QsbrArrayImpl>(p, 8, theta, zetan);
    const double chapel = run_zipf<ChapelArrayImpl>(p, 8, theta, zetan);
    table.add_row({rcua::util::Table::fixed(theta, 2),
                   rcua::util::Table::num(ebr), rcua::util::Table::num(qsbr),
                   rcua::util::Table::num(chapel)});
    std::printf("... theta=%.2f done\n", theta);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
