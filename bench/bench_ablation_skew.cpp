// Ablation: access skew. The paper evaluates uniform-random and
// sequential indexing only; real table workloads are Zipfian. Skew
// concentrates traffic on a few hot blocks, which (a) improves effective
// locality (hot remote blocks stream instead of paying first-touch cost)
// and (b) does nothing to EBR's bottleneck, which is the per-locale
// reader counters, not the data.

#include "bench_common.hpp"
#include "util/workload.hpp"

#include <atomic>

namespace {

using namespace rcua::bench;

template <typename Impl>
double run_zipf(const Params& p, std::uint64_t num_locales, double theta,
                double zetan) {
  rcua::rt::Cluster cluster(
      {.num_locales = static_cast<std::uint32_t>(num_locales),
       .workers_per_locale = p.tasks_per_locale + 2});
  auto arr = Impl::make(cluster, p.array_elems, p.block_size);
  const std::uint64_t total_ops = num_locales *
                                  static_cast<std::uint64_t>(p.tasks_per_locale) *
                                  p.ops_per_task;
  const double tput = measure_tasks(
      cluster, p.tasks_per_locale, total_ops, p.wallclock,
      [&](std::uint32_t l, std::uint32_t t) {
        const std::uint64_t gid =
            static_cast<std::uint64_t>(l) * p.tasks_per_locale + t;
        rcua::util::ZipfGenerator zipf(p.array_elems, theta,
                                       rcua::plat::mix64(p.seed ^ (gid + 1)),
                                       zetan);
        for (std::uint64_t n = 0; n < p.ops_per_task; ++n) {
          arr->write(zipf.next(), n);
        }
      });
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

/// Zipfian READ workload on a QSBR array with an explicit block-cache
/// capacity: the hot set concentrates on a few blocks, so with the cache
/// on (100% capacity) remote reads collapse to O(hot blocks) fills —
/// the cached column's gap over the uncached one widens with theta
/// (bench_ablation_cache sweeps the capacity axis in detail).
double run_zipf_reads(const Params& p, std::uint64_t num_locales,
                      double theta, double zetan, std::size_t cache_bytes) {
  rcua::rt::Cluster cluster(
      {.num_locales = static_cast<std::uint32_t>(num_locales),
       .workers_per_locale = p.tasks_per_locale + 2});
  rcua::RCUArray<std::uint64_t, rcua::QsbrPolicy> arr(
      cluster, p.array_elems,
      {.block_size = p.block_size, .cache_capacity_bytes = cache_bytes});
  const std::uint64_t total_ops = num_locales *
                                  static_cast<std::uint64_t>(p.tasks_per_locale) *
                                  p.ops_per_task;
  std::atomic<std::uint64_t> sink{0};
  const double tput = measure_tasks(
      cluster, p.tasks_per_locale, total_ops, p.wallclock,
      [&](std::uint32_t l, std::uint32_t t) {
        const std::uint64_t gid =
            static_cast<std::uint64_t>(l) * p.tasks_per_locale + t;
        rcua::util::ZipfGenerator zipf(p.array_elems, theta,
                                       rcua::plat::mix64(p.seed ^ (gid + 1)),
                                       zetan);
        std::uint64_t acc = 0;
        for (std::uint64_t n = 0; n < p.ops_per_task; ++n) {
          acc += arr.read(zipf.next());
        }
        sink.fetch_add(acc, std::memory_order_relaxed);
      });
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return tput;
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: Zipfian access skew (8 locales)",
      "(not a paper figure) theta swept 0.2 -> 0.99 (YCSB default)",
      "throughput rises with skew for QSBR/Chapel (hot blocks stream); "
      "EBR stays pinned by its reader-counter serialization; the cached "
      "read column (block cache at 100% capacity, DESIGN.md §11) pulls "
      "away from the uncached one as the hot set shrinks");

  const std::size_t array_bytes =
      static_cast<std::size_t>(p.array_elems) * sizeof(std::uint64_t);
  rcua::util::Table table({"theta", "EBRArray", "QSBRArray", "ChapelArray",
                           "QSBR-read", "QSBR-read-cached"});
  for (const double theta : {0.2, 0.5, 0.8, 0.99}) {
    const double zetan =
        rcua::util::ZipfGenerator::compute_zetan(p.array_elems, theta);
    const double ebr = run_zipf<EbrArrayImpl>(p, 8, theta, zetan);
    const double qsbr = run_zipf<QsbrArrayImpl>(p, 8, theta, zetan);
    const double chapel = run_zipf<ChapelArrayImpl>(p, 8, theta, zetan);
    const double rd = run_zipf_reads(p, 8, theta, zetan, 0);
    const double rd_cached = run_zipf_reads(p, 8, theta, zetan, array_bytes);
    table.add_row({rcua::util::Table::fixed(theta, 2),
                   rcua::util::Table::num(ebr), rcua::util::Table::num(qsbr),
                   rcua::util::Table::num(chapel), rcua::util::Table::num(rd),
                   rcua::util::Table::num(rd_cached)});
    std::printf("... theta=%.2f done\n", theta);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
