// Ablation: bounded-memory reclamation bake-off (DESIGN.md §13).
//
// Five reclamation schemes retire the same spine train and are judged on
// one question: how much retired-but-unreclaimed memory does a stalled
// reader cost? The epoch schemes (striped EBR, legacy EBR) defer every
// spine whose grace period a parked reader blocks, and QSBR defers every
// spine until its laggard participant checkpoints — in both cases the
// unreclaimed list grows linearly with the resize train. The interval
// schemes (IBR, hazard eras) tag each spine with its [birth, retire] era
// lifetime and free everything a stalled reservation does not overlap,
// so their pending list is bounded by a constant per locale, independent
// of both the stall duration and the train length.
//
// Part 1 (wallclock): readers hammer read() under injected FaultPlan
// stalls while the main thread runs a resize train; the table reports
// resize/read throughput and each scheme's unreclaimed high-water mark
// per stall duration.
//
// Part 2 (deterministic): single-locale, single-worker train against one
// parked snapshot View (QSBR: a participant that never checkpoints).
// The counters are pure functions of the workload and are emitted as
// comm_stat lines for scripts/check_bench_gate.py:
//
//   ibr/he      retired / freed / era_advances / era_scans
//   ebr/legacy  stalled_spines
//   qsbr        defers
//   all         pending_end / pending_after_flush
//
// The bench asserts the headline itself and fails (rc=1) otherwise:
// interval pending_end stays at its constant bound while ebr/legacy/qsbr
// pending_end equals the train length, and every scheme drains to zero
// once the laggard leaves.
//
// Extra knobs on top of bench_common's:
//
//   RCUA_RECLAIM      comma list of schemes to run, subset of
//                     "ebr,legacy,qsbr,ibr,he" (default: all five)
//   RCUA_STALL_LIST   comma list of injected stall durations in ns
//                     (default "0,2000000")
//   RCUA_STALL_PROB_M stalls per million read consultations (default 200)
//   RCUA_RESIZES      resize_adds per wallclock cell (default 24)
//   RCUA_THREADS      reader thread count (default 2; first element used)

#include "bench_common.hpp"

#include <atomic>
#include <optional>
#include <string>
#include <thread>

#include "reclaim/qsbr.hpp"
#include "reclaim/stall_monitor.hpp"
#include "runtime/fault_plan.hpp"
#include "runtime/thread_registry.hpp"

namespace {

using namespace rcua::bench;
namespace reclaim = rcua::reclaim;
namespace rt = rcua::rt;

/// Part 2 train length. Fixed (not env-derived) so the comm_stat config
/// identity is stable under RCUA_RESIZES overrides.
constexpr std::uint64_t kTrain = 16;
/// Interval schemes: a point reservation overlaps at most this many
/// consecutive spine lifetimes per locale (DESIGN.md §13).
constexpr std::size_t kIntervalBound = 2;

/// Full QSBR drain. Deferrals are spread across every thread that ran a
/// publish body, and a checkpoint only reclaims the CALLER's list — so
/// alternate main/worker checkpoint rounds first, then flush the
/// remainder stranded on pool threads that have already exited (their
/// parked records are invisible to every future checkpoint). The flush
/// is shutdown-grade and only legal here because the laggard has been
/// released and no reader is live.
void drain_qsbr(rt::Cluster& cluster, reclaim::Qsbr& qsbr) {
  for (int round = 0; round < 2; ++round) {
    qsbr.checkpoint();
    cluster.coforall_locales([&](std::uint32_t) { qsbr.checkpoint(); });
  }
  qsbr.checkpoint();
  qsbr.flush_unsafe();
}

bool scheme_enabled(const char* tag) {
  const auto list = rcua::util::env_str("RCUA_RECLAIM");
  if (!list) return true;
  const std::string padded = "," + *list + ",";
  return padded.find(std::string(",") + tag + ",") != std::string::npos;
}

// ---- Part 1: wallclock stall sweep ------------------------------------

struct CellResult {
  double resizes_per_sec = 0.0;
  double reads_per_sec = 0.0;
  /// Retired-but-unreclaimed high-water bytes; SIZE_MAX = not tracked
  /// in bytes by this scheme (QSBR deferral is object-granular).
  std::size_t hwm_bytes = SIZE_MAX;
  std::size_t pending_end = 0;  // objects, sampled with readers live
  std::size_t leftover = 0;     // objects after the post-run drain
};

template <typename Policy>
CellResult run_cell(std::uint64_t stall_ns, double stall_prob,
                    std::uint32_t readers, std::uint64_t resizes,
                    const Params& p) {
  using Array = rcua::RCUArray<std::uint64_t, Policy>;
  rt::FaultPlan plan(p.seed);  // outlives the cluster's workers
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 2});

  reclaim::StallMonitor monitor(/*budget_bytes=*/0,
                                reclaim::StallMonitor::Escalation::kWarn);
  monitor.set_sink(nullptr);  // silent: the table reports totals

  std::optional<rt::ThreadRegistry> registry;
  std::optional<reclaim::Qsbr> qsbr;

  typename Array::Options opts;
  opts.block_size = p.block_size;
  opts.stall_policy.deadline_ns = 100 * 1000;  // defer, never block
  opts.stall_policy.park_ns = 20 * 1000;
  opts.stall_monitor = &monitor;
  if constexpr (Array::uses_qsbr) {
    registry.emplace();
    qsbr.emplace(*registry);
    opts.qsbr = &*qsbr;
  }
  Array arr(cluster, p.block_size, opts);

  if (stall_ns > 0) {
    plan.add({.action = rt::FaultPlan::Action::kStallReader,
              .locale = rt::FaultPlan::kAnyLocale,
              .fire_from = 1,
              .fire_count = UINT64_MAX,
              .probability = stall_prob,
              .delay_ns = stall_ns});
    cluster.set_fault_plan(&plan);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> pool;
  for (std::uint32_t r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      std::uint64_t i = r;
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        arr.read(i++ % p.block_size);
        ++n;
      }
      reads.fetch_add(n, std::memory_order_relaxed);
    });
  }

  rcua::plat::Timer total;
  for (std::uint64_t n = 0; n < resizes; ++n) arr.resize_add(p.block_size);
  const double total_s = total.elapsed_s();

  CellResult out;
  // Sample pending while the readers (the stall source) are still live.
  if constexpr (Array::uses_qsbr) {
    out.pending_end = qsbr->pending_total();
  } else {
    out.pending_end = arr.reclaim_pending_objects();
    if constexpr (Array::uses_interval) {
      out.hwm_bytes = arr.ebr_stats_at(0).pending_bytes_hwm;
    } else {
      out.hwm_bytes = monitor.peak_overflow_bytes();
    }
  }

  stop.store(true);
  for (auto& t : pool) t.join();
  cluster.set_fault_plan(nullptr);

  out.resizes_per_sec =
      total_s > 0 ? static_cast<double>(resizes) / total_s : 0.0;
  out.reads_per_sec =
      total_s > 0
          ? static_cast<double>(reads.load(std::memory_order_relaxed)) /
                total_s
          : 0.0;

  // With every reader gone the drain must leave nothing behind.
  if constexpr (Array::uses_qsbr) {
    drain_qsbr(cluster, *qsbr);
    out.leftover = qsbr->pending_total();
  } else {
    arr.reclaim_overflow();
    out.leftover = arr.reclaim_pending_objects();
  }
  return out;
}

template <typename Policy>
void sweep_scheme(const char* tag, const std::vector<std::uint64_t>& stalls,
                  double stall_prob, std::uint32_t readers,
                  std::uint64_t resizes, const Params& p,
                  rcua::util::Table& table) {
  for (const std::uint64_t stall_ns : stalls) {
    const CellResult r =
        run_cell<Policy>(stall_ns, stall_prob, readers, resizes, p);
    table.add_row(
        {tag, rcua::util::Table::num(static_cast<double>(stall_ns) / 1e3),
         rcua::util::Table::num(r.resizes_per_sec),
         rcua::util::Table::num(r.reads_per_sec),
         r.hwm_bytes == SIZE_MAX
             ? std::string("-")
             : rcua::util::Table::fixed(
                   static_cast<double>(r.hwm_bytes) / 1024.0, 1),
         std::to_string(r.pending_end), std::to_string(r.leftover)});
    std::printf("... scheme=%s stall=%llu ns done (pending_end=%zu)\n", tag,
                static_cast<unsigned long long>(stall_ns), r.pending_end);
  }
}

// ---- Part 2: deterministic counters (the CI gate) ---------------------

template <typename Policy>
bool run_counters(const char* tag) {
  using Array = rcua::RCUArray<std::uint64_t, Policy>;
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = 1});

  reclaim::StallMonitor monitor(/*budget_bytes=*/0,
                                reclaim::StallMonitor::Escalation::kWarn);
  monitor.set_sink(nullptr);

  std::optional<rt::ThreadRegistry> registry;
  std::optional<reclaim::Qsbr> qsbr;

  typename Array::Options opts;
  opts.block_size = 64;
  // Parked view: every EBR drain must time out deterministically.
  opts.stall_policy.deadline_ns = 1;
  opts.stall_policy.spin_iters = 1;
  opts.stall_policy.yield_iters = 1;
  opts.stall_policy.park_ns = 1000;
  opts.stall_monitor = &monitor;
  if constexpr (Array::uses_qsbr) {
    registry.emplace();
    qsbr.emplace(*registry);
    opts.qsbr = &*qsbr;
  }
  Array arr(cluster, /*initial_capacity=*/64, opts);

  // The laggard: a parked snapshot View (epoch/interval schemes) or a
  // registered participant that never checkpoints (QSBR).
  std::optional<typename Array::View> view;
  reclaim::Qsbr::Stats qsbr_base{};
  if constexpr (Array::uses_qsbr) {
    (void)arr.read(0);  // registers this thread as the laggard
    // Drain the construction-time deferral so the train starts at zero.
    drain_qsbr(cluster, *qsbr);
    qsbr_base = qsbr->stats();
  } else {
    view.emplace(arr);
  }
  const auto era_base = [&] {
    if constexpr (!Array::uses_qsbr) return arr.ebr_stats_at(0);
    return typename Policy::Reclaimer::Stats{};
  }();

  for (std::uint64_t n = 0; n < kTrain; ++n) arr.resize_add(64);

  std::size_t pending_end = 0;
  rcua::obs::StatLine line("comm_stat");
  line.kv("bench", "reclaim_bakeoff").kv("scheme", tag).kv("resizes", kTrain);
  if constexpr (Array::uses_qsbr) {
    const auto s = qsbr->stats();
    pending_end = qsbr->pending_total();
    line.kv("defers", s.defers - qsbr_base.defers);
  } else if constexpr (Array::uses_interval) {
    const auto s = arr.ebr_stats_at(0);
    pending_end = arr.reclaim_pending_objects();
    line.kv("retired", s.retired - era_base.retired)
        .kv("freed", s.freed - era_base.freed)
        .kv("era_advances", s.epoch_advances - era_base.epoch_advances)
        .kv("era_scans", s.era_scans - era_base.era_scans);
  } else {
    pending_end = arr.reclaim_pending_objects();
    line.kv("stalled_spines", arr.stalled_spines());
  }

  // Release the laggard; liveness demands a full drain.
  std::size_t pending_after_flush = 0;
  if constexpr (Array::uses_qsbr) {
    drain_qsbr(cluster, *qsbr);
    pending_after_flush = qsbr->pending_total();
  } else {
    view.reset();
    arr.reclaim_overflow();
    pending_after_flush = arr.reclaim_pending_objects();
  }
  line.kv("pending_end", static_cast<std::uint64_t>(pending_end))
      .kv("pending_after_flush",
          static_cast<std::uint64_t>(pending_after_flush))
      .print();

  // The headline, asserted: interval schemes hold a constant bound;
  // everything else holds one spine per resize. All drain to zero.
  bool ok = pending_after_flush == 0;
  if constexpr (Array::uses_interval) {
    ok = ok && pending_end <= kIntervalBound * cluster.num_locales();
  } else {
    ok = ok && pending_end == kTrain;
  }
  std::printf("deterministic %-6s pending_end=%zu after_flush=%zu %s\n", tag,
              pending_end, pending_after_flush, ok ? "ok" : "VIOLATION");
  return ok;
}

}  // namespace

int main() {
  Params p = Params::from_env({.block_size = 256});
  const auto stalls =
      rcua::util::env_u64_list("RCUA_STALL_LIST", {0, 2 * 1000 * 1000});
  const double stall_prob =
      static_cast<double>(rcua::util::env_u64("RCUA_STALL_PROB_M", 200)) / 1e6;
  const std::uint64_t resizes = rcua::util::env_u64("RCUA_RESIZES", 24);
  const auto readers = static_cast<std::uint32_t>(
      rcua::util::env_u64_list("RCUA_THREADS", {2}).front());

  std::printf("== Ablation: bounded-memory reclamation bake-off ==\n");
  std::printf(
      "workload       : %u readers under injected stalls (%.0f/M reads), "
      "%llu resize_adds per cell\n",
      readers, stall_prob * 1e6, static_cast<unsigned long long>(resizes));
  std::printf(
      "this run       : block=%zu mode=wallclock (stalls are real), then "
      "a deterministic %llu-resize train per scheme\n\n",
      p.block_size, static_cast<unsigned long long>(kTrain));

  rcua::util::Table table({"scheme", "stall_us", "resizes/s", "reads/s",
                           "hwm_kib", "pend_end", "leftover"});
  if (scheme_enabled("ebr")) {
    sweep_scheme<rcua::EbrPolicy>("ebr", stalls, stall_prob, readers, resizes,
                                  p, table);
  }
  if (scheme_enabled("legacy")) {
    sweep_scheme<rcua::LegacyEbrPolicy>("legacy", stalls, stall_prob, readers,
                                        resizes, p, table);
  }
  if (scheme_enabled("qsbr")) {
    sweep_scheme<rcua::QsbrPolicy>("qsbr", stalls, stall_prob, readers,
                                   resizes, p, table);
  }
  if (scheme_enabled("ibr")) {
    sweep_scheme<rcua::IbrPolicy>("ibr", stalls, stall_prob, readers, resizes,
                                  p, table);
  }
  if (scheme_enabled("he")) {
    sweep_scheme<rcua::HazardErasPolicy>("he", stalls, stall_prob, readers,
                                         resizes, p, table);
  }

  std::printf("\nunreclaimed memory under reader stalls:\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  std::printf("\n");

  bool ok = true;
  if (scheme_enabled("ebr")) ok &= run_counters<rcua::EbrPolicy>("ebr");
  if (scheme_enabled("legacy")) {
    ok &= run_counters<rcua::LegacyEbrPolicy>("legacy");
  }
  if (scheme_enabled("qsbr")) ok &= run_counters<rcua::QsbrPolicy>("qsbr");
  if (scheme_enabled("ibr")) ok &= run_counters<rcua::IbrPolicy>("ibr");
  if (scheme_enabled("he")) ok &= run_counters<rcua::HazardErasPolicy>("he");

  if (!ok) {
    std::printf("\nBAKEOFF FAIL: a scheme broke its memory bound or never "
                "drained\n");
    return 1;
  }
  std::printf("\nbounded-memory contract holds: interval schemes <= %zu "
              "spines/locale, epoch/qsbr = train length, all drain to 0\n",
              kIntervalBound);
  return 0;
}
