// Ablation: BlockSize sensitivity. The paper fixes BlockSize=1024 and
// footnotes that only whole-block expansion is covered; this sweep shows
// why 1024 is a sane default — small blocks bloat the spine (more
// block-switch misses on random access, longer spine clones on resize),
// huge blocks coarsen distribution granularity.

#include "bench_common.hpp"

namespace {

using namespace rcua::bench;

double run_resize_sweep(std::size_t block_size, std::uint64_t steps) {
  rcua::rt::Cluster cluster({.num_locales = 8, .workers_per_locale = 2});
  QsbrArrayImpl::type arr(cluster, 0, {block_size, nullptr});
  rcua::sim::TaskClock root;
  {
    rcua::sim::ClockScope scope(root);
    for (std::uint64_t i = 0; i < steps; ++i) arr.resize_add(block_size);
  }
  rcua::reclaim::Qsbr::global().flush_unsafe();
  return static_cast<double>(steps) /
         (static_cast<double>(root.vtime_ns) * 1e-9);
}

double run_random_index(const Params& p, std::size_t block_size) {
  Params q = p;
  q.block_size = block_size;
  return run_indexing<QsbrArrayImpl>(q, 8, Pattern::kRandom);
}

}  // namespace

int main() {
  using namespace rcua::bench;
  Params p = Params::from_env({.ops_per_task = 2048});
  p.print_banner(
      "Ablation: BlockSize sensitivity (QSBRArray, 8 locales)",
      "(not a paper figure) paper fixes BlockSize=1024",
      "random-index throughput roughly flat; resize throughput falls as "
      "blocks shrink (more blocks to allocate and clone per element)");

  rcua::util::Table table(
      {"block_size", "random_index_ops_s", "resize_ops_s"});
  for (const std::size_t bs : {64UL, 256UL, 1024UL, 4096UL, 16384UL}) {
    const double idx = run_random_index(p, bs);
    const double rsz = run_resize_sweep(bs, 128);
    table.add_row({std::to_string(bs), rcua::util::Table::num(idx),
                   rcua::util::Table::num(rsz)});
    std::printf("... block_size=%zu done\n", bs);
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);
  return 0;
}
