// Ablation: EBR read-side reader-counter striping.
//
// Raw BasicEbr read sections (no array, no payload) across a task-count
// sweep, comparing the paper's legacy 2-counter collective layout against
// the striped bank at stripe counts 1, 2, 4, ... up to twice the hardware
// concurrency (at least 8 so the sweep is informative on small hosts).
// This isolates exactly the cost the tentpole optimization attacks: the
// announce/retract RMWs on the EpochReaders line(s).
//
// Throughput is virtual-time by default (RCUA_WALLCLOCK=1 for wall time).
// Extra knobs on top of bench_common's:
//
//   RCUA_THREADS      comma list of task counts (default "1,2,4,8,16")
//   RCUA_STRIPE_LIST  comma list of stripe counts for the striped columns
//
// Expected shape: the legacy column collapses as tasks grow (every
// announce/retract transfers the one shared line); the striped columns
// flatten out once stripes >= tasks, recovering near-QSBR read cost.

#include "bench_common.hpp"

#include <algorithm>

#include "platform/topology.hpp"
#include "reclaim/ebr.hpp"

namespace {

using namespace rcua::bench;
namespace reclaim = rcua::reclaim;
namespace rt = rcua::rt;

/// One cell of the sweep: `tasks` tasks on one locale, each running
/// `ops` empty read-side critical sections against a shared reclaimer.
template <typename EbrT>
double run_reads(std::uint32_t tasks, std::uint64_t ops, bool wallclock,
                 std::size_t stripes) {
  rt::Cluster cluster({.num_locales = 1, .workers_per_locale = tasks + 2});
  EbrT ebr(0, stripes);
  const std::uint64_t total = static_cast<std::uint64_t>(tasks) * ops;
  return measure_tasks(cluster, tasks, total, wallclock,
                       [&](std::uint32_t, std::uint32_t) {
                         for (std::uint64_t n = 0; n < ops; ++n) {
                           ebr.read([] { return 0; });
                         }
                       });
}

std::vector<std::uint64_t> default_stripe_list() {
  const std::size_t hw = rcua::plat::hardware_threads();
  std::uint64_t ceil = 8;  // keep the sweep informative on tiny hosts
  while (ceil < 2 * hw) ceil *= 2;
  std::vector<std::uint64_t> list;
  for (std::uint64_t s = 1; s <= ceil; s *= 2) list.push_back(s);
  return list;
}

}  // namespace

int main() {
  Params p = Params::from_env({.ops_per_task = 4096});
  const std::vector<std::uint64_t> threads =
      rcua::util::env_u64_list("RCUA_THREADS", {1, 2, 4, 8, 16});
  const std::vector<std::uint64_t> stripe_list =
      rcua::util::env_u64_list("RCUA_STRIPE_LIST", default_stripe_list());

  std::printf("== Ablation: EBR reader-counter striping ==\n");
  std::printf(
      "workload       : raw BasicEbr read sections, 1 locale, empty body\n");
  std::printf(
      "this run       : ops/task=%llu hw_threads=%zu mode=%s\n\n",
      static_cast<unsigned long long>(p.ops_per_task),
      rcua::plat::hardware_threads(),
      p.wallclock ? "wallclock" : "virtual-time");

  std::vector<std::string> header{"tasks", "legacy"};
  for (const std::uint64_t s : stripe_list) {
    header.push_back("striped" + std::to_string(s));
  }
  rcua::util::Table table(header);

  double legacy_at_max = 0.0, best_striped_at_max = 0.0;
  for (const std::uint64_t t : threads) {
    const auto tasks = static_cast<std::uint32_t>(t);
    std::vector<std::string> row{std::to_string(t)};
    const double legacy = run_reads<reclaim::LegacyEbr>(
        tasks, p.ops_per_task, p.wallclock, /*stripes=*/1);
    row.push_back(rcua::util::Table::num(legacy));
    double best = 0.0;
    for (const std::uint64_t s : stripe_list) {
      const double v = run_reads<reclaim::Ebr>(tasks, p.ops_per_task,
                                               p.wallclock, s);
      best = std::max(best, v);
      row.push_back(rcua::util::Table::num(v));
    }
    table.add_row(std::move(row));
    legacy_at_max = legacy;
    best_striped_at_max = best;
    std::printf("... tasks=%llu done\n", static_cast<unsigned long long>(t));
  }

  std::printf("\nthroughput (reads/sec):\n");
  table.print(std::cout);
  std::printf("\ncsv:\n");
  table.print_csv(std::cout);

  if (legacy_at_max > 0) {
    std::printf("\nbest striped / legacy at %llu tasks: %.2fx\n",
                static_cast<unsigned long long>(threads.back()),
                best_striped_at_max / legacy_at_max);
  }
  return 0;
}
